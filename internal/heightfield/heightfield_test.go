package heightfield

import (
	"math"
	"testing"
)

func TestNewGridPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(1) must panic")
		}
	}()
	NewGrid(1)
}

func TestGridIndexing(t *testing.T) {
	g := NewGrid(4)
	g.Set(2, 3, 7.5)
	if got := g.At(2, 3); got != 7.5 {
		t.Fatalf("At(2,3) = %g, want 7.5", got)
	}
	x, y := g.XY(3, 0)
	if x != 1 || y != 0 {
		t.Fatalf("XY(3,0) = (%g,%g), want (1,0)", x, y)
	}
	x, y = g.XY(0, 3)
	if x != 0 || y != 1 {
		t.Fatalf("XY(0,3) = (%g,%g), want (0,1)", x, y)
	}
}

func TestPointsCoverUnitSquare(t *testing.T) {
	g := Highland(17, 42)
	pts := g.Points()
	if len(pts) != 17*17 {
		t.Fatalf("len(Points) = %d, want %d", len(pts), 17*17)
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point outside unit square: %v", p)
		}
	}
	// Corner points must be exactly at the corners.
	if pts[0].X != 0 || pts[0].Y != 0 {
		t.Errorf("first point not at origin: %v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.X != 1 || last.Y != 1 {
		t.Errorf("last point not at (1,1): %v", last)
	}
}

func TestNormalize(t *testing.T) {
	g := NewGrid(3)
	for i := range g.Z {
		g.Z[i] = float64(i) * 2
	}
	g.Normalize(10)
	lo, hi := g.MinMax()
	if lo != 0 || hi != 10 {
		t.Fatalf("after Normalize: min=%g max=%g", lo, hi)
	}
	// Flat grid normalizes to all zeros without NaN.
	f := NewGrid(3)
	for i := range f.Z {
		f.Z[i] = 5
	}
	f.Normalize(1)
	for _, z := range f.Z {
		if z != 0 {
			t.Fatalf("flat grid must normalize to 0, got %g", z)
		}
	}
}

func TestDiamondSquareDeterministic(t *testing.T) {
	a := DiamondSquare(5, 0.6, 1)
	b := DiamondSquare(5, 0.6, 1)
	c := DiamondSquare(5, 0.6, 2)
	if a.Size != 33 {
		t.Fatalf("size = %d, want 33", a.Size)
	}
	same, diff := true, false
	for i := range a.Z {
		if a.Z[i] != b.Z[i] {
			same = false
		}
		if a.Z[i] != c.Z[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed must reproduce the same grid")
	}
	if !diff {
		t.Error("different seeds must differ")
	}
}

func TestHighlandProperties(t *testing.T) {
	g := Highland(64, 7)
	lo, hi := g.MinMax()
	if lo != 0 || hi != 1 {
		t.Fatalf("Highland must be normalized to [0,1], got [%g,%g]", lo, hi)
	}
	s := Summarize(g)
	if s.StddevZ < 0.05 {
		t.Errorf("highland too flat: stddev=%g", s.StddevZ)
	}
	for _, z := range g.Z {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			t.Fatal("non-finite height")
		}
	}
}

func TestCraterShape(t *testing.T) {
	g := Crater(129, 11)
	lo, hi := g.MinMax()
	if lo != 0 || hi != 1 {
		t.Fatalf("Crater must be normalized to [0,1], got [%g,%g]", lo, hi)
	}
	// The rim (at radius ~0.28 from center) must be higher than both the
	// lake center and the far corner.
	mid := g.Size / 2
	rim := int(float64(g.Size-1) * (0.5 + 0.28))
	center := g.At(mid, mid)
	rimZ := g.At(rim, mid)
	corner := g.At(0, 0)
	if rimZ <= center {
		t.Errorf("rim (%g) must be above lake center (%g)", rimZ, center)
	}
	if rimZ <= corner {
		t.Errorf("rim (%g) must be above corner (%g)", rimZ, corner)
	}
}

func TestNamed(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		g, err := Named(name, 33, 1)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if g.Size != 33 {
			t.Errorf("Named(%q) size = %d", name, g.Size)
		}
	}
	if _, err := Named("ocean", 33, 1); err == nil {
		t.Error("unknown dataset name must error")
	}
}

func TestValueNoiseRange(t *testing.T) {
	n := valueNoise{seed: 99}
	for x := 0.0; x < 4; x += 0.37 {
		for y := 0.0; y < 4; y += 0.29 {
			v := n.at(x, y)
			if v < 0 || v >= 1 {
				t.Fatalf("noise out of range at (%g,%g): %g", x, y, v)
			}
		}
	}
	// Lattice values must be reproducible.
	if n.lattice(3, 4) != n.lattice(3, 4) {
		t.Error("lattice not deterministic")
	}
}

func TestSummarize(t *testing.T) {
	g := NewGrid(2)
	g.Z = []float64{0, 1, 1, 1}
	s := Summarize(g)
	if s.Points != 4 || s.MinZ != 0 || s.MaxZ != 1 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.MeanZ != 0.75 {
		t.Errorf("mean = %g, want 0.75", s.MeanZ)
	}
	if s.RimIndex != 0.75 {
		t.Errorf("rim index = %g, want 0.75", s.RimIndex)
	}
}
