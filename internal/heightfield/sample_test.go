package heightfield

import (
	"math"
	"testing"
)

func TestHeightAtExactSamples(t *testing.T) {
	g := NewGrid(5)
	for j := 0; j < 5; j++ {
		for i := 0; i < 5; i++ {
			g.Set(i, j, float64(i*10+j))
		}
	}
	for j := 0; j < 5; j++ {
		for i := 0; i < 5; i++ {
			x, y := g.XY(i, j)
			if got := g.HeightAt(x, y); math.Abs(got-g.At(i, j)) > 1e-12 {
				t.Fatalf("HeightAt(%g,%g) = %g, want %g", x, y, got, g.At(i, j))
			}
		}
	}
}

func TestHeightAtInterpolates(t *testing.T) {
	// A plane z = x is reproduced exactly by bilinear interpolation.
	g := NewGrid(3)
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			x, _ := g.XY(i, j)
			g.Set(i, j, x)
		}
	}
	for _, x := range []float64{0, 0.1, 0.37, 0.5, 0.9, 1} {
		if got := g.HeightAt(x, 0.42); math.Abs(got-x) > 1e-12 {
			t.Fatalf("HeightAt(%g) = %g", x, got)
		}
	}
}

func TestHeightAtClamps(t *testing.T) {
	g := Highland(9, 1)
	if g.HeightAt(-5, 0.5) != g.HeightAt(0, 0.5) {
		t.Error("x below range must clamp")
	}
	if g.HeightAt(0.5, 99) != g.HeightAt(0.5, 1) {
		t.Error("y above range must clamp")
	}
}

func TestSampleIrregular(t *testing.T) {
	g := Crater(33, 4)
	pts := g.SampleIrregular(200, 7)
	if len(pts) != 200 {
		t.Fatalf("got %d points", len(pts))
	}
	// The four corners are always included.
	corners := map[[2]float64]bool{}
	for _, p := range pts[:4] {
		corners[[2]float64{p.X, p.Y}] = true
	}
	for _, c := range [][2]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		if !corners[c] {
			t.Fatalf("corner %v missing", c)
		}
	}
	seen := map[[2]float64]bool{}
	for _, p := range pts {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point outside unit square: %v", p)
		}
		key := [2]float64{p.X, p.Y}
		if seen[key] {
			t.Fatalf("duplicate sample at %v", key)
		}
		seen[key] = true
		if math.Abs(p.Z-g.HeightAt(p.X, p.Y)) > 1e-12 {
			t.Fatalf("sample height mismatch at %v", key)
		}
	}
	// Determinism.
	again := g.SampleIrregular(200, 7)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestSampleIrregularMinimum(t *testing.T) {
	g := Highland(9, 1)
	pts := g.SampleIrregular(1, 1)
	if len(pts) != 4 {
		t.Fatalf("minimum sample must be the 4 corners, got %d", len(pts))
	}
}
