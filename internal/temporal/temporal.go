// Package temporal supports multi-version terrain analysis — the paper's
// introduction motivates DBMS-managed terrain partly because "terrain data
// is captured over a period of time thus multiple versions may be used
// together for spatiotemporal analysis". A Series holds one Direct Mesh
// store per capture; Diff retrieves the same region from two versions at
// the same level of detail and rasterizes both approximations onto a
// common grid to measure elevation change, so coarse LODs give cheap
// broad-brush change detection and fine LODs give precise extents.
package temporal

import (
	"fmt"
	"math"

	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
	"dmesh/internal/render"
)

// Series is an ordered set of terrain versions.
type Series struct {
	labels []string
	stores []*dm.Store
}

// Add appends a version.
func (s *Series) Add(label string, store *dm.Store) {
	s.labels = append(s.labels, label)
	s.stores = append(s.stores, store)
}

// Len returns the number of versions.
func (s *Series) Len() int { return len(s.stores) }

// Label returns version i's label.
func (s *Series) Label(i int) string { return s.labels[i] }

// Store returns version i's store.
func (s *Series) Store(i int) *dm.Store { return s.stores[i] }

// DiffResult summarizes elevation change between two versions.
type DiffResult struct {
	// Raster holds per-cell elevation deltas (version b minus version a);
	// cells not covered by both approximations are excluded.
	Raster *render.Raster
	// MeanAbs, Max are the mean absolute and maximum absolute deltas over
	// compared cells.
	MeanAbs, Max float64
	// ChangedFraction is the fraction of compared cells whose |delta|
	// exceeds the threshold passed to Diff.
	ChangedFraction float64
	// Compared counts the cells covered by both versions.
	Compared int
	// DiskAccesses is the total retrieval cost of both queries.
	DiskAccesses uint64
}

// Diff compares versions a and b over roi at LOD e on a cells x cells
// raster. threshold classifies a cell as changed.
func (s *Series) Diff(a, b int, roi geom.Rect, e float64, cells int, threshold float64) (*DiffResult, error) {
	if a < 0 || a >= len(s.stores) || b < 0 || b >= len(s.stores) {
		return nil, fmt.Errorf("temporal: version out of range (%d, %d of %d)", a, b, len(s.stores))
	}
	if cells < 1 {
		cells = 128
	}
	ra, daA, err := s.rasterize(a, roi, e, cells)
	if err != nil {
		return nil, err
	}
	rb, daB, err := s.rasterize(b, roi, e, cells)
	if err != nil {
		return nil, err
	}

	out := &DiffResult{
		Raster:       render.NewRaster(cells, cells),
		DiskAccesses: daA + daB,
	}
	changed := 0
	var sumAbs float64
	for i := range ra.Z {
		if !ra.Covered[i] || !rb.Covered[i] {
			continue
		}
		d := rb.Z[i] - ra.Z[i]
		out.Raster.Z[i] = d
		out.Raster.Covered[i] = true
		out.Compared++
		ad := math.Abs(d)
		sumAbs += ad
		if ad > out.Max {
			out.Max = ad
		}
		if ad > threshold {
			changed++
		}
	}
	if out.Compared > 0 {
		out.MeanAbs = sumAbs / float64(out.Compared)
		out.ChangedFraction = float64(changed) / float64(out.Compared)
	}
	return out, nil
}

// rasterize queries one version and rasterizes the result over roi.
func (s *Series) rasterize(v int, roi geom.Rect, e float64, cells int) (*render.Raster, uint64, error) {
	store := s.stores[v]
	var res *dm.Result
	da, err := obs.MeasuredRun(store, func() error {
		var qerr error
		res, qerr = store.ViewpointIndependent(roi, e)
		return qerr
	})
	if err != nil {
		return nil, 0, fmt.Errorf("temporal: version %q: %w", s.labels[v], err)
	}
	// Rasterize in ROI-local coordinates.
	local := make(map[int64]geom.Point3, len(res.Vertices))
	w, h := roi.Width(), roi.Height()
	if w == 0 || h == 0 {
		return nil, 0, fmt.Errorf("temporal: degenerate ROI %v", roi)
	}
	for id, p := range res.Vertices {
		local[id] = geom.Point3{X: (p.X - roi.MinX) / w, Y: (p.Y - roi.MinY) / h, Z: p.Z}
	}
	return render.Mesh(local, res.Triangles, cells, cells), da, nil
}
