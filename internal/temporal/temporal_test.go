package temporal

import (
	"math"
	"sort"
	"testing"

	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
	"dmesh/internal/mesh"
	"dmesh/internal/simplify"
)

func storeFor(t *testing.T, g *heightfield.Grid) (*dm.Store, *dm.Dataset) {
	t.Helper()
	seq, err := simplify.Run(mesh.FromGrid(g), simplify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dm.FromSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dm.BuildStore(ds, dm.StorePools{})
	if err != nil {
		t.Fatal(err)
	}
	return s, ds
}

func lodPct(ds *dm.Dataset, p float64) float64 {
	var es []float64
	for i := range ds.Tree.Nodes {
		if !ds.Tree.Nodes[i].IsLeaf() {
			es = append(es, ds.Tree.Nodes[i].ELow)
		}
	}
	sort.Float64s(es)
	return es[int(p*float64(len(es)-1))]
}

func buildSeries(t *testing.T) (*Series, *dm.Dataset) {
	t.Helper()
	g1 := heightfield.Highland(33, 9)
	g2 := heightfield.NewGrid(33)
	copy(g2.Z, g1.Z)
	g2.Excavate(0.3, 0.3, 0.15, 0.5)

	s1, ds := storeFor(t, g1)
	s2, _ := storeFor(t, g2)
	series := &Series{}
	series.Add("2025", s1)
	series.Add("2026", s2)
	return series, ds
}

func TestSeriesBasics(t *testing.T) {
	series, _ := buildSeries(t)
	if series.Len() != 2 || series.Label(0) != "2025" || series.Store(1) == nil {
		t.Fatalf("series metadata wrong")
	}
	if _, err := series.Diff(0, 5, geom.Rect{MaxX: 1, MaxY: 1}, 0.001, 32, 0.01); err == nil {
		t.Fatal("out-of-range version must error")
	}
}

func TestDiffFindsTheExcavation(t *testing.T) {
	series, ds := buildSeries(t)
	roi := geom.Rect{MinX: 0.02, MinY: 0.02, MaxX: 0.98, MaxY: 0.98}
	e := lodPct(ds, 0.5)
	res, err := series.Diff(0, 1, roi, e, 64, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compared == 0 {
		t.Fatal("nothing compared")
	}
	if res.DiskAccesses == 0 {
		t.Fatal("diff reported no retrieval cost")
	}
	// The excavation is 0.5 deep; the maximum change must be near that.
	if res.Max < 0.3 {
		t.Fatalf("max change %g, expected ~0.5", res.Max)
	}
	// Change must be LOCALIZED: inside the bowl the mean |dz| is large,
	// far away it is near zero.
	var inSum, outSum float64
	var inN, outN int
	for j := 0; j < res.Raster.H; j++ {
		for i := 0; i < res.Raster.W; i++ {
			idx := j*res.Raster.W + i
			if !res.Raster.Covered[idx] {
				continue
			}
			x := roi.MinX + (float64(i)+0.5)/float64(res.Raster.W)*roi.Width()
			y := roi.MinY + (float64(j)+0.5)/float64(res.Raster.H)*roi.Height()
			d := math.Hypot(x-0.3, y-0.3)
			dz := math.Abs(res.Raster.Z[idx])
			if d < 0.10 {
				inSum += dz
				inN++
			} else if d > 0.25 {
				outSum += dz
				outN++
			}
		}
	}
	if inN == 0 || outN == 0 {
		t.Fatal("bad sampling")
	}
	inMean, outMean := inSum/float64(inN), outSum/float64(outN)
	if inMean < 5*outMean {
		t.Fatalf("change not localized: inside %.4f vs outside %.4f", inMean, outMean)
	}
	// Changed fraction is small (the bowl covers ~7%% of the terrain).
	if res.ChangedFraction <= 0 || res.ChangedFraction > 0.3 {
		t.Fatalf("changed fraction %.3f out of expected range", res.ChangedFraction)
	}
}

func TestDiffSelfIsZero(t *testing.T) {
	series, ds := buildSeries(t)
	roi := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}
	res, err := series.Diff(0, 0, roi, lodPct(ds, 0.5), 48, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Rasterization of the identical mesh twice differs only by float
	// noise.
	if res.Max > 1e-9 || res.ChangedFraction != 0 {
		t.Fatalf("self diff nonzero: %+v", res)
	}
}

func TestDiffCoarserIsCheaper(t *testing.T) {
	series, ds := buildSeries(t)
	roi := geom.Rect{MinX: 0.02, MinY: 0.02, MaxX: 0.98, MaxY: 0.98}
	fine, err := series.Diff(0, 1, roi, lodPct(ds, 0.3), 48, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := series.Diff(0, 1, roi, lodPct(ds, 0.85), 48, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Compared == 0 {
		t.Fatal("coarse diff compared nothing")
	}
	if coarse.DiskAccesses >= fine.DiskAccesses {
		t.Fatalf("coarse diff (%d DA) should cost less than fine (%d DA)",
			coarse.DiskAccesses, fine.DiskAccesses)
	}
	// Even the coarse diff should spot the excavation.
	if coarse.Max < 0.15 {
		t.Fatalf("coarse diff missed the excavation: max %g", coarse.Max)
	}
}
