package dm

import (
	"path/filepath"
	"testing"

	"dmesh/internal/geom"
)

func TestBuildStoreAtAndReopen(t *testing.T) {
	ds, _ := buildDataset(t, 8, "highland")
	dir := filepath.Join(t.TempDir(), "store")

	s, err := BuildStoreAt(ds, StorePools{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	e := eAtPercentile(ds, 0.5)
	want, err := s.ViewpointIndependent(fullRect(), e)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StorePools{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.MaxE() != s.MaxE() {
		t.Fatalf("MaxE %g != %g after reopen", s2.MaxE(), s.MaxE())
	}
	got, err := s2.ViewpointIndependent(fullRect(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vertices) != len(want.Vertices) || len(got.Edges) != len(want.Edges) {
		t.Fatalf("reopened store differs: %d/%d vertices, %d/%d edges",
			len(got.Vertices), len(want.Vertices), len(got.Edges), len(want.Edges))
	}
	for id := range want.Vertices {
		if _, ok := got.Vertices[id]; !ok {
			t.Fatalf("vertex %d missing after reopen", id)
		}
	}
	// By-ID fetch also works on the reopened store.
	n, err := s2.FetchByID(0)
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != 0 {
		t.Fatalf("FetchByID(0) returned node %d", n.ID)
	}
}

func TestBuildStoreAtRefusesOverwrite(t *testing.T) {
	ds, _ := buildDataset(t, 5, "highland")
	dir := filepath.Join(t.TempDir(), "store")
	s, err := BuildStoreAt(ds, StorePools{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := BuildStoreAt(ds, StorePools{}, dir); err == nil {
		t.Fatal("second BuildStoreAt must refuse to overwrite")
	}
}

func TestOpenStoreMissing(t *testing.T) {
	if _, err := OpenStore(filepath.Join(t.TempDir(), "nope"), StorePools{}); err == nil {
		t.Fatal("OpenStore on missing directory must fail")
	}
}

func TestOpenStoreColdQueriesCount(t *testing.T) {
	ds, _ := buildDataset(t, 8, "crater")
	dir := filepath.Join(t.TempDir(), "store")
	s, err := BuildStoreAt(ds, StorePools{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := OpenStore(dir, StorePools{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.ResetStats()
	roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	if _, err := s2.ViewpointIndependent(roi, eAtPercentile(ds, 0.5)); err != nil {
		t.Fatal(err)
	}
	if s2.DiskAccesses() == 0 {
		t.Fatal("file-backed cold query reported zero disk accesses")
	}
}
