package dm

import (
	"strings"
	"testing"

	"dmesh/internal/geom"
)

func TestRadialValidation(t *testing.T) {
	ds, _ := buildDataset(t, 6, "highland")
	s := newTestStore(t, ds)
	if _, err := s.Radial(geom.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}, geom.Point2{}, 1, 4); err == nil {
		t.Fatal("invalid ROI must be rejected")
	}
	if _, err := s.Radial(fullRect(), geom.Point2{}, 0, 4); err == nil {
		t.Fatal("non-positive scale must be rejected")
	}
}

func TestRadialLiveSetMatchesProfile(t *testing.T) {
	ds, _ := buildDataset(t, 9, "crater")
	s := newTestStore(t, ds)
	viewer := geom.Point2{X: 0.5, Y: 0.1}
	roi := geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.95, MaxY: 0.95}
	// Scale chosen so the nearest terrain needs a mid-fine LOD.
	scale := eAtPercentile(ds, 0.6) / 0.1
	res, err := s.Radial(roi, viewer, scale, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) == 0 {
		t.Fatal("empty radial result")
	}
	if res.Strips != 36 {
		t.Fatalf("expected 36 tiles, got %d", res.Strips)
	}
	// Ground truth: the per-position interval rule over the whole tree.
	want := make(map[int64]bool)
	for i := range ds.Tree.Nodes {
		n := &ds.Tree.Nodes[i]
		if !roi.ContainsPoint(n.Pos.XY()) {
			continue
		}
		req := scale * viewer.Dist(n.Pos.XY())
		if n.Interval().Contains(req) {
			want[int64(i)] = true
		}
	}
	if len(res.Vertices) != len(want) {
		t.Fatalf("radial live set %d, want %d", len(res.Vertices), len(want))
	}
	for id := range res.Vertices {
		if !want[id] {
			t.Fatalf("vertex %d should not be live", id)
		}
	}
}

func TestRadialFinerNearViewer(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	viewer := geom.Point2{X: 0.1, Y: 0.1}
	roi := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	scale := eAtPercentile(ds, 0.7) / 0.2
	res, err := s.Radial(roi, viewer, scale, 8)
	if err != nil {
		t.Fatal(err)
	}
	var nearE, farE float64
	var nearN, farN int
	for id := range res.Vertices {
		n := &ds.Tree.Nodes[id]
		if viewer.Dist(n.Pos.XY()) < 0.4 {
			nearE += n.ELow
			nearN++
		} else {
			farE += n.ELow
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Skip("degenerate band split")
	}
	if nearE/float64(nearN) > farE/float64(farN) {
		t.Fatalf("near region coarser (%g) than far (%g)", nearE/float64(nearN), farE/float64(farN))
	}
}

func TestRadialCheaperThanFullCube(t *testing.T) {
	// Tiling around the profile must beat one cube spanning the whole
	// radial LOD range.
	ds, _ := buildDataset(t, 10, "highland")
	s := newTestStore(t, ds)
	viewer := geom.Point2{X: 0.5, Y: 0.0}
	roi := geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.95, MaxY: 0.95}
	scale := eAtPercentile(ds, 0.5) / 0.1

	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if _, err := s.Radial(roi, viewer, scale, 8); err != nil {
		t.Fatal(err)
	}
	tiled := s.DiskAccesses()

	// The single-cube equivalent: the radial range over the whole ROI.
	lo, hi := radialRange(roi, viewer, scale)
	if hi > s.MaxE() {
		hi = s.MaxE()
	}
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if _, err := s.newFetcher().fetchBox(geom.BoxFromRect(roi, lo, hi)); err != nil {
		t.Fatal(err)
	}
	single := s.DiskAccesses()
	if tiled > single {
		t.Fatalf("tiled radial fetch (%d DA) worse than single cube (%d DA)", tiled, single)
	}
}

func TestExplainPlane(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	model, err := s.CostModel()
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.95, MaxY: 0.95},
		EMin: eAtPercentile(ds, 0.2), EMax: eAtPercentile(ds, 0.95), Axis: 1,
	}
	plan, err := s.ExplainPlane(qp, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Strips) < 1 {
		t.Fatal("empty plan")
	}
	if plan.EstimatedDA <= 0 || plan.SingleBaseDA <= 0 {
		t.Fatalf("non-positive estimates: %+v", plan)
	}
	// The plan's strip count must match what MultiBase actually executes.
	res, err := s.MultiBase(qp, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strips != len(plan.Strips) {
		t.Fatalf("plan has %d strips, execution used %d", len(plan.Strips), res.Strips)
	}
	out := plan.String()
	if !strings.Contains(out, "multi-base plan") || !strings.Contains(out, "cube 0") {
		t.Fatalf("String output:\n%s", out)
	}
	if _, err := s.ExplainPlane(qp, nil, 0); err == nil {
		t.Fatal("nil model must be rejected")
	}
}

// TestRadialTileBoundaryPointsOnce: a grid point lying exactly on a
// shared tile edge is fetched by every adjacent tile's range query
// (closed boxes), but the merged result must contain it — and the edges
// and triangles around it — exactly once, and the live set must still
// match the radial profile oracle.
func TestRadialTileBoundaryPointsOnce(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland") // grid coords k/8: x=0.5 is a 2x2 tile edge
	s := newTestStore(t, ds)
	viewer := geom.Point2{X: 0.25, Y: 0.25}
	roi := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	scale := eAtPercentile(ds, 0.6) / 0.3
	res, err := s.Radial(roi, viewer, scale, 2)
	if err != nil {
		t.Fatal(err)
	}

	onBoundary := func(p geom.Point2) bool { return p.X == 0.5 || p.Y == 0.5 }
	want := make(map[int64]bool)
	boundaryLive := 0
	for i := range ds.Tree.Nodes {
		n := &ds.Tree.Nodes[i]
		if !roi.ContainsPoint(n.Pos.XY()) {
			continue
		}
		if n.Interval().Contains(scale * viewer.Dist(n.Pos.XY())) {
			want[int64(i)] = true
			if onBoundary(n.Pos.XY()) {
				boundaryLive++
			}
		}
	}
	if boundaryLive == 0 {
		t.Fatal("test is vacuous: no live point on a tile boundary")
	}
	if len(res.Vertices) != len(want) {
		t.Fatalf("live set %d, want %d", len(res.Vertices), len(want))
	}
	for id := range want {
		if _, ok := res.Vertices[id]; !ok {
			t.Fatalf("live node %d (pos %v) missing", id, ds.Tree.Nodes[id].Pos.XY())
		}
	}

	edges := make(map[[2]int64]bool, len(res.Edges))
	for _, e := range res.Edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalized", e)
		}
		if edges[e] {
			t.Fatalf("edge %v appears twice", e)
		}
		edges[e] = true
	}
	tris := make(map[geom.Triangle]bool, len(res.Triangles))
	for _, tr := range res.Triangles {
		c := tr.Canon()
		if tris[c] {
			t.Fatalf("triangle %v appears twice", c)
		}
		tris[c] = true
	}
}
