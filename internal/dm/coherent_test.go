package dm

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dmesh/internal/geom"
)

// requireSameMesh compares two results as sets: same vertex IDs and
// positions, same edge set, same triangle set. Slice orders differ
// between the incremental and from-scratch assemblers by design.
func requireSameMesh(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Vertices) != len(want.Vertices) {
		t.Fatalf("%s: %d vertices, want %d", label, len(got.Vertices), len(want.Vertices))
	}
	for id, p := range want.Vertices {
		if gp, ok := got.Vertices[id]; !ok || gp != p {
			t.Fatalf("%s: vertex %d = %v, want %v", label, id, gp, p)
		}
	}
	sortEdges := func(es [][2]int64) [][2]int64 {
		out := append([][2]int64(nil), es...)
		sort.Slice(out, func(i, j int) bool {
			if out[i][0] != out[j][0] {
				return out[i][0] < out[j][0]
			}
			return out[i][1] < out[j][1]
		})
		return out
	}
	ge, we := sortEdges(got.Edges), sortEdges(want.Edges)
	if len(ge) != len(we) {
		t.Fatalf("%s: %d edges, want %d", label, len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: edge[%d] = %v, want %v", label, i, ge[i], we[i])
		}
	}
	sortTris := func(ts []geom.Triangle) []geom.Triangle {
		out := make([]geom.Triangle, len(ts))
		for i, tr := range ts {
			out[i] = tr.Canon()
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.A != b.A {
				return a.A < b.A
			}
			if a.B != b.B {
				return a.B < b.B
			}
			return a.C < b.C
		})
		return out
	}
	gt, wt := sortTris(got.Triangles), sortTris(want.Triangles)
	if len(gt) != len(wt) {
		t.Fatalf("%s: %d triangles, want %d", label, len(gt), len(wt))
	}
	for i := range gt {
		if gt[i] != wt[i] {
			t.Fatalf("%s: triangle[%d] = %v, want %v", label, i, gt[i], wt[i])
		}
	}
}

// cameraWalk yields a drifting ROI with occasional teleports — the
// random camera path of the exactness property test.
type cameraWalk struct {
	rng  *rand.Rand
	x, y float64
	w, h float64
}

func newCameraWalk(seed int64, w, h float64) *cameraWalk {
	rng := rand.New(rand.NewSource(seed))
	return &cameraWalk{rng: rng, x: rng.Float64() * (1 - w), y: rng.Float64() * (1 - h), w: w, h: h}
}

func (c *cameraWalk) next(teleport bool) geom.Rect {
	if teleport {
		c.x = c.rng.Float64() * (1 - c.w)
		c.y = c.rng.Float64() * (1 - c.h)
	} else {
		c.x += (c.rng.Float64()*2 - 1) * 0.08 * c.w
		c.y += (0.2 + c.rng.Float64()*0.6) * 0.15 * c.h // mostly forward
	}
	clamp := func(v, hi float64) float64 {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	c.x, c.y = clamp(c.x, 1-c.w), clamp(c.y, 1-c.h)
	return geom.Rect{MinX: c.x, MinY: c.y, MaxX: c.x + c.w, MaxY: c.y + c.h}
}

// TestCoherentSingleBaseExact drives a >= 30-frame random camera path
// on both datasets and checks that every incremental single-base frame
// equals the from-scratch query of the same plane.
func TestCoherentSingleBaseExact(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds, _ := buildDataset(t, 9, name)
		s := newTestStore(t, ds)
		model, err := s.CostModel()
		if err != nil {
			t.Fatal(err)
		}
		cs := s.NewCoherentSession(model)
		walk := newCameraWalk(101, 0.55, 0.45)
		emin := eAtPercentile(ds, 0.5)
		emax := eAtPercentile(ds, 0.95)
		for i := 0; i < 36; i++ {
			roi := walk.next(i == 12 || i == 24)
			qp := geom.QueryPlane{R: roi, EMin: emin, EMax: emax, Axis: 1}
			got, st, err := cs.Frame(qp)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.SingleBase(qp)
			if err != nil {
				t.Fatal(err)
			}
			requireSameMesh(t, fmt.Sprintf("%s SB frame %d (full=%v)", name, i, st.Full), got, want)
		}
	}
}

// TestCoherentMultiBaseExact does the same for cost-model strip plans:
// the incremental frame must equal ExecuteStrips on the identical plan.
func TestCoherentMultiBaseExact(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds, _ := buildDataset(t, 9, name)
		s := newTestStore(t, ds)
		model, err := s.CostModel()
		if err != nil {
			t.Fatal(err)
		}
		cs := s.NewCoherentSession(model)
		walk := newCameraWalk(202, 0.6, 0.5)
		emin := eAtPercentile(ds, 0.4)
		for i := 0; i < 32; i++ {
			roi := walk.next(i == 16)
			// Vary the plane slope so LOD-band changes dirty the mesh
			// even when the ROI barely moves.
			emax := emin + (0.5+0.5*float64(i%5)/4)*(ds.MaxE()-emin)
			qp := geom.QueryPlane{R: roi, EMin: emin, EMax: emax, Axis: 1}
			strips := model.PlanStrips(qp, 8)
			got, st, err := cs.FrameStrips(qp, strips)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.ExecuteStrips(qp, strips)
			if err != nil {
				t.Fatal(err)
			}
			requireSameMesh(t, fmt.Sprintf("%s MB frame %d (full=%v strips=%d)", name, i, st.Full, len(strips)), got, want)
		}
	}
}

// TestCoherentUniformExact checks viewpoint-independent frames,
// including LODs above the dataset maximum (fetch clamp) and the
// whole-terrain rectangle.
func TestCoherentUniformExact(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds, _ := buildDataset(t, 9, name)
		s := newTestStore(t, ds)
		model, err := s.CostModel()
		if err != nil {
			t.Fatal(err)
		}
		cs := s.NewCoherentSession(model)
		walk := newCameraWalk(303, 0.5, 0.5)
		for i := 0; i < 30; i++ {
			roi := walk.next(i == 10)
			if i == 20 {
				roi = fullRect()
			}
			e := eAtPercentile(ds, 0.3+0.6*float64(i%7)/6)
			if i%9 == 8 {
				e = ds.MaxE() * 1.5 // above every stored segment: root cut
			}
			got, st, err := cs.FrameUniform(roi, e)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.ViewpointIndependent(roi, e)
			if err != nil {
				t.Fatal(err)
			}
			requireSameMesh(t, fmt.Sprintf("%s uniform frame %d (full=%v e=%g)", name, i, st.Full, e), got, want)
		}
	}
}

// TestCoherentMixedModesExact interleaves uniform, single-base, and
// multi-base frames in one session: the retained state must carry
// across plane types (uniform and lifted representative maps differ).
func TestCoherentMixedModesExact(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	model, err := s.CostModel()
	if err != nil {
		t.Fatal(err)
	}
	cs := s.NewCoherentSession(model)
	walk := newCameraWalk(404, 0.5, 0.45)
	emin := eAtPercentile(ds, 0.5)
	emax := eAtPercentile(ds, 0.97)
	for i := 0; i < 33; i++ {
		roi := walk.next(i == 11)
		qp := geom.QueryPlane{R: roi, EMin: emin, EMax: emax, Axis: 1}
		label := fmt.Sprintf("mixed frame %d mode %d", i, i%3)
		switch i % 3 {
		case 0:
			got, _, err := cs.FrameUniform(roi, emax)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.ViewpointIndependent(roi, emax)
			if err != nil {
				t.Fatal(err)
			}
			requireSameMesh(t, label, got, want)
		case 1:
			got, _, err := cs.Frame(qp)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.SingleBase(qp)
			if err != nil {
				t.Fatal(err)
			}
			requireSameMesh(t, label, got, want)
		default:
			got, _, err := cs.FrameMultiBase(qp, 6)
			if err != nil {
				t.Fatal(err)
			}
			want, err := s.MultiBase(qp, model, 6)
			if err != nil {
				t.Fatal(err)
			}
			requireSameMesh(t, label, got, want)
		}
	}
}

// TestCoherentFallbackAndEviction pins the control-flow behavior: the
// first frame is full, drifting frames run incrementally with evictions
// and retained nodes, a teleport falls back to a full requery, and
// Invalidate forces one.
func TestCoherentFallbackAndEviction(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	model, err := s.CostModel()
	if err != nil {
		t.Fatal(err)
	}
	cs := s.NewCoherentSession(model)
	emin, emax := eAtPercentile(ds, 0.5), eAtPercentile(ds, 0.95)
	plane := func(y float64) geom.QueryPlane {
		return geom.QueryPlane{R: geom.Rect{MinX: 0.1, MinY: y, MaxX: 0.6, MaxY: y + 0.4}, EMin: emin, EMax: emax, Axis: 1}
	}
	_, st, err := cs.Frame(plane(0.0))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Fatal("first frame must be full")
	}
	sawEvict := false
	for i := 1; i <= 5; i++ {
		_, st, err = cs.Frame(plane(0.04 * float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if st.Full {
			t.Fatalf("drift frame %d fell back to full (predFull=%g predDelta=%g)", i, st.PredFullDA, st.PredDeltaDA)
		}
		if st.Retained == 0 {
			t.Fatalf("drift frame %d retained nothing", i)
		}
		sawEvict = sawEvict || st.Evicted > 0
	}
	if !sawEvict {
		t.Fatal("no drift frame evicted anything")
	}
	// Teleport to a disjoint ROI: the fragments equal the target, so
	// the decision must prefer the clean full query.
	qp := plane(0.55)
	qp.R.MinX, qp.R.MaxX = 0.62, 0.98
	_, st, err = cs.Frame(qp)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Fatalf("teleport frame not full (predFull=%g predDelta=%g)", st.PredFullDA, st.PredDeltaDA)
	}
	cs.Invalidate()
	_, st, err = cs.Frame(qp)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Fatal("frame after Invalidate must be full")
	}
}

// TestCoherentIdenticalFrameFree: re-querying the same plane must fetch
// nothing and still return the identical mesh.
func TestCoherentIdenticalFrame(t *testing.T) {
	ds, _ := buildDataset(t, 9, "crater")
	s := newTestStore(t, ds)
	model, err := s.CostModel()
	if err != nil {
		t.Fatal(err)
	}
	cs := s.NewCoherentSession(model)
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.7, MaxY: 0.7},
		EMin: eAtPercentile(ds, 0.5), EMax: eAtPercentile(ds, 0.9), Axis: 1,
	}
	first, _, err := cs.Frame(qp)
	if err != nil {
		t.Fatal(err)
	}
	second, st, err := cs.Frame(qp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Full || st.Fetched != 0 || st.Evicted != 0 {
		t.Fatalf("identical frame not free: %+v", st)
	}
	requireSameMesh(t, "identical frame", second, first)
}

// TestConnListsSymmetric pins the assumption the dirty-pair walk relies
// on: if b is in a's connection list, a is in b's. Without symmetry a
// dirty node could fail to find a clean partner's pair.
func TestConnListsSymmetric(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds, _ := buildDataset(t, 9, name)
		for id := range ds.Conn {
			for _, b := range ds.Conn[id] {
				found := false
				for _, back := range ds.Conn[b] {
					if back == int64(id) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: conn asymmetry: %d lists %d but not vice versa", name, id, b)
				}
			}
		}
	}
}

// TestCoherentSavesDiskAccesses is the economics check: on a
// memory-constrained store (multi-tenant pool pressure), a drifting
// 90%-overlap path answered incrementally must pay well under half the
// disk accesses of warm full requeries of the same frames.
func TestCoherentSavesDiskAccesses(t *testing.T) {
	ds, _ := buildDataset(t, 17, "highland")
	s, err := BuildStore(ds, StorePools{Data: 8, Overflow: 4, Index: 8, IDIndex: 4})
	if err != nil {
		t.Fatal(err)
	}
	model, err := s.CostModel()
	if err != nil {
		t.Fatal(err)
	}
	emin, emax := eAtPercentile(ds, 0.5), eAtPercentile(ds, 0.95)
	planes := make([]geom.QueryPlane, 20)
	for i := range planes {
		y := 0.02 * float64(i)
		planes[i] = geom.QueryPlane{
			R:    geom.Rect{MinX: 0.1, MinY: y, MaxX: 0.7, MaxY: y + 0.45},
			EMin: emin, EMax: emax, Axis: 1,
		}
	}

	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	var fullDA uint64
	for i, qp := range planes {
		sess.ResetStats()
		if _, err := sess.SingleBase(qp); err != nil {
			t.Fatal(err)
		}
		if i > 0 { // frame 0 is cold for both engines; compare steady state
			fullDA += sess.DiskAccesses()
		}
	}

	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	cs := s.NewCoherentSession(model)
	var incDA uint64
	for i, qp := range planes {
		_, st, err := cs.Frame(qp)
		if err != nil {
			t.Fatal(err)
		}
		if st.Full && i > 0 {
			t.Fatalf("frame %d unexpectedly full", i)
		}
		if i > 0 {
			incDA += st.DA
		}
	}
	if incDA*2 > fullDA {
		t.Fatalf("incremental DA %d not 2x better than full %d", incDA, fullDA)
	}
}
