package dm

import "dmesh/internal/geom"

// patchMesh maintains a reconstructed approximation mesh across
// coherent frames so that only the dirty region is re-triangulated.
//
// Edges are refcounted: a lifted edge (rep(a), rep(b)) can be witnessed
// by several connection pairs (a, b), and it exists while at least one
// witness remains (assembleLifted's seen-set dedup, made incremental).
// The triangle set is maintained as the exact 3-cliques of the edge
// graph: when an edge appears, the common neighbors of its endpoints
// each close a new triangle; when an edge disappears, every triangle on
// it dies. Both updates are order-independent across a batch of edge
// changes — a triangle that loses an edge is removed at whichever of
// its removed edges is processed first, and one that gains its final
// edge is added when that last edge arrives — so patching a frame's
// dirty pairs in any order lands on the same mesh as a full rebuild.
type patchMesh struct {
	edgeCount map[[2]int64]int
	adj       map[int64]map[int64]struct{}
	tris      map[geom.Triangle]struct{}
}

func newPatchMesh() *patchMesh {
	return &patchMesh{
		edgeCount: make(map[[2]int64]int),
		adj:       make(map[int64]map[int64]struct{}),
		tris:      make(map[geom.Triangle]struct{}),
	}
}

// inc adds one witness for edge e, materializing the edge (and the
// triangles it closes) on the 0 -> 1 transition.
func (p *patchMesh) inc(e [2]int64) {
	p.edgeCount[e]++
	if p.edgeCount[e] == 1 {
		p.addEdge(e[0], e[1])
	}
}

// dec removes one witness for edge e, dissolving the edge (and every
// triangle on it) on the 1 -> 0 transition.
func (p *patchMesh) dec(e [2]int64) {
	c := p.edgeCount[e] - 1
	if c > 0 {
		p.edgeCount[e] = c
		return
	}
	delete(p.edgeCount, e)
	p.removeEdge(e[0], e[1])
}

func (p *patchMesh) addEdge(u, v int64) {
	p.forEachCommonNeighbor(u, v, func(w int64) {
		p.tris[canonTriangle(u, v, w)] = struct{}{}
	})
	p.link(u, v)
	p.link(v, u)
}

func (p *patchMesh) removeEdge(u, v int64) {
	p.unlink(u, v)
	p.unlink(v, u)
	p.forEachCommonNeighbor(u, v, func(w int64) {
		delete(p.tris, canonTriangle(u, v, w))
	})
}

func (p *patchMesh) link(u, v int64) {
	m := p.adj[u]
	if m == nil {
		m = make(map[int64]struct{})
		p.adj[u] = m
	}
	m[v] = struct{}{}
}

func (p *patchMesh) unlink(u, v int64) {
	m := p.adj[u]
	delete(m, v)
	if len(m) == 0 {
		delete(p.adj, u)
	}
}

func (p *patchMesh) forEachCommonNeighbor(u, v int64, fn func(w int64)) {
	a, b := p.adj[u], p.adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	for w := range a {
		if _, ok := b[w]; ok {
			fn(w)
		}
	}
}

func canonTriangle(a, b, c int64) geom.Triangle {
	return geom.Triangle{A: a, B: b, C: c}.Canon()
}

// result snapshots the current mesh over the live vertex set. The edge
// and triangle slice orders are unspecified (map iteration), matching
// the from-scratch assemblers; consumers compare as sets.
func (p *patchMesh) result(live map[int64]*Node) *Result {
	res := &Result{Vertices: make(map[int64]geom.Point3, len(live))}
	for id, n := range live {
		res.Vertices[id] = n.Pos
	}
	res.Edges = make([][2]int64, 0, len(p.edgeCount))
	for e := range p.edgeCount {
		res.Edges = append(res.Edges, e)
	}
	res.Triangles = make([]geom.Triangle, 0, len(p.tris))
	for t := range p.tris {
		res.Triangles = append(res.Triangles, t)
	}
	return res
}
