package dm

import (
	"testing"

	"dmesh/internal/geom"
)

// TestCoherentFrameStatsDeterministic replays the same seeded camera
// path on two independently built stores and requires identical
// per-frame FrameStats — including DA. The disk-access metric is only
// meaningful if a fixed workload produces a fixed access pattern
// (fixed seeds, sorted iteration, total-order tie-breaks); any map-order
// leak into the I/O schedule shows up here as a DA diff.
func TestCoherentFrameStatsDeterministic(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	emin, emax := eAtPercentile(ds, 0.5), eAtPercentile(ds, 0.95)

	for _, mode := range []string{"single-base", "multi-base"} {
		run := func() []FrameStats {
			s := newTestStore(t, ds)
			model, err := s.CostModel()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.DropCaches(); err != nil {
				t.Fatal(err)
			}
			s.ResetStats()
			cs := s.NewCoherentSession(model)
			walk := newCameraWalk(77, 0.5, 0.4)
			var out []FrameStats
			for i := 0; i < 24; i++ {
				roi := walk.next(i == 8 || i == 16)
				qp := geom.QueryPlane{R: roi, EMin: emin, EMax: emax, Axis: 1}
				var st FrameStats
				if mode == "single-base" {
					_, st, err = cs.Frame(qp)
				} else {
					_, st, err = cs.FrameMultiBase(qp, 8)
				}
				if err != nil {
					t.Fatalf("%s frame %d: %v", mode, i, err)
				}
				out = append(out, st)
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s frame %d stats differ across identical runs:\n  run1 %+v\n  run2 %+v",
					mode, i, a[i], b[i])
			}
		}
	}
}
