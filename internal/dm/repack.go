package dm

import (
	"fmt"
	"math"

	"dmesh/internal/storage/heapfile"
	"dmesh/internal/storage/pager"
)

// loadNodes materializes every node of an open store, indexed by ID.
// Node IDs are dense (0..N-1, the collapse-sequence numbering), so the
// B+-tree range over them recovers the full table — including overflowed
// connection lists — without any in-memory dataset.
func loadNodes(src *Store) ([]Node, error) {
	n := src.idx.Len()
	nodes := make([]Node, n)
	seen := int64(0)
	bufs := newRecBufs()
	var ferr error
	err := src.idx.Range(math.MinInt64, math.MaxInt64, func(id, rid int64) bool {
		if id < 0 || id >= n {
			ferr = fmt.Errorf("dm: repack: node ID %d outside dense range [0, %d)", id, n)
			return false
		}
		var node Node
		node, ferr = src.fetchRecord(heapfile.RID(rid), &bufs, nil)
		if ferr != nil {
			return false
		}
		nodes[id] = node
		seen++
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("dm: repack: scan id index: %w", err)
	}
	if ferr != nil {
		return nil, ferr
	}
	if seen != n {
		return nil, fmt.Errorf("dm: repack: id index yielded %d of %d nodes", seen, n)
	}
	return nodes, nil
}

// Repack rewrites an open store into dir under the layout (and pool
// configuration) in pools — the offline re-layout pass: read every
// record out of src, recompute the physical order, write a fresh store.
// The source is only read; the result is a complete, independently
// openable store directory that answers every query identically (same
// nodes, same connection lists — only page placement changes).
func Repack(src *Store, pools StorePools, dir string) (*Store, error) {
	nodes, err := loadNodes(src)
	if err != nil {
		return nil, err
	}
	return buildNodesAt(nodes, src.maxE, pools, dir)
}

// RepackOnBackends is Repack onto caller-supplied backends (heap,
// overflow, r*-tree, id index) instead of a directory; fault-injection
// tests use it to interpose wrappers under the repacked store.
func RepackOnBackends(src *Store, pools StorePools, backends [4]pager.Backend) (*Store, error) {
	nodes, err := loadNodes(src)
	if err != nil {
		return nil, err
	}
	return buildNodes(nodes, src.maxE, pools, backends)
}
