package dm

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/pm"
)

// packedFixtures covers the encoding's whole value space: every float
// escape (dyadic, +0 ELow, +Inf EHigh, raw), adversarial IEEE bit
// patterns (NaN payloads, -0.0, denormals, extremes), every topology-ref
// shape (all None, mixed, far deltas), and connection lists from empty
// to max valence with negative first deltas.
func packedFixtures() []Node {
	nan1 := math.Float64frombits(0x7ff8dead_beef0001) // NaN, custom payload
	nan2 := math.Float64frombits(0xfff00000_00000001) // negative signaling-style NaN
	mk := func(id int64, x, y, z, elo, ehi float64, refs [5]int64, conn []int64) Node {
		return Node{Node: pm.Node{ID: id, Pos: geom.Point3{X: x, Y: y, Z: z},
			ELow: elo, EHigh: ehi, Parent: refs[0], Child1: refs[1], Child2: refs[2],
			Wing1: refs[3], Wing2: refs[4]}, Conn: conn}
	}
	none := [5]int64{pm.None, pm.None, pm.None, pm.None, pm.None}
	longConn := make([]int64, 3000)
	for i := range longConn {
		longConn[i] = int64(100 + i)
	}
	return []Node{
		// A typical leaf: dyadic grid coordinates, ELow +0, near refs.
		mk(7, 0.5, 0.25, 3.0/4096, 0, 0.125, [5]int64{9, pm.None, pm.None, 5, 11}, []int64{3, 5, 9, 11}),
		// A root: EHigh +Inf, children, no parent.
		mk(100, 0.5, 0.5, 1, 0.25, math.Inf(1), [5]int64{pm.None, 40, 60, pm.None, pm.None}, []int64{98, 99, 101}),
		// NaN payloads and -0.0 must take the raw path bit-for-bit.
		mk(1, nan1, math.Copysign(0, -1), nan2, math.Copysign(0, -1), nan1, none, nil),
		// Denormals, extremes, and -Inf.
		mk(2, math.SmallestNonzeroFloat64, -math.MaxFloat64, math.Inf(-1),
			math.SmallestNonzeroFloat64, math.Inf(-1), none, []int64{2}),
		// Non-dyadic irrationals alongside dyadic negatives.
		mk(3, 0.1, -3.75, math.Pi, 1e-9, 2.5, [5]int64{0, 1, 2, pm.None, 4}, []int64{0, 1, 2, 3}),
		// Huge ID with a connection list entirely below it (negative first
		// delta) and refs far away in both directions.
		mk(1<<40, 0.5, 0.5, 0.5, 0, math.Inf(1),
			[5]int64{0, 1 << 41, pm.None, 3, pm.None}, []int64{-5, 0, 3, 1 << 39}),
		// ID 0, empty everything.
		mk(0, 0, 0, 0, 0, math.Inf(1), none, nil),
		// ELow exactly -0.0: must NOT take the pkELowZero escape (which
		// restores +0.0) — the raw path preserves the sign bit.
		mk(12, 1, 1, 1, math.Copysign(0, -1), 1, none, []int64{10, 11, 13}),
		// Dyadic boundary: the largest index that still round-trips, and
		// one past it (falls back to raw).
		mk(13, float64(int64(1)<<41)/4096, float64(int64(1)<<41+4096)/4096, -float64(int64(1)<<41)/4096,
			0, math.Inf(1), none, nil),
		// Max valence with dense deltas.
		mk(50, 0.5, 0.5, 0.5, 0.25, 0.5, [5]int64{49, 51, 52, pm.None, 48}, longConn),
	}
}

func requireNodeBitsEqual(t *testing.T, ctx string, want, got *Node) {
	t.Helper()
	fb := math.Float64bits
	if got.ID != want.ID ||
		fb(got.Pos.X) != fb(want.Pos.X) || fb(got.Pos.Y) != fb(want.Pos.Y) ||
		fb(got.Pos.Z) != fb(want.Pos.Z) ||
		fb(got.ELow) != fb(want.ELow) || fb(got.EHigh) != fb(want.EHigh) ||
		got.Parent != want.Parent || got.Child1 != want.Child1 || got.Child2 != want.Child2 ||
		got.Wing1 != want.Wing1 || got.Wing2 != want.Wing2 {
		t.Fatalf("%s: decoded node differs\nwant %+v\ngot  %+v", ctx, want.Node, got.Node)
	}
	if len(got.Conn) != len(want.Conn) {
		t.Fatalf("%s: %d conn IDs, want %d", ctx, len(got.Conn), len(want.Conn))
	}
	for i := range want.Conn {
		if got.Conn[i] != want.Conn[i] {
			t.Fatalf("%s: conn[%d] = %d, want %d", ctx, i, got.Conn[i], want.Conn[i])
		}
	}
}

// TestPackedRecordRoundTripBitExact is the codec's correctness property:
// decode(encode(n)) restores every field with the exact IEEE-754 bit
// pattern — NaN payloads, signed zeros, infinities, and denormals
// included — for lists from empty to max valence.
func TestPackedRecordRoundTripBitExact(t *testing.T) {
	var buf []byte
	for fi, n := range packedFixtures() {
		buf = encodePackedRecord(&n, noOverflow, len(n.Conn), buf)
		if want := packedRecordLen(&n, len(n.Conn), false); len(buf) != want {
			t.Fatalf("fixture %d: encoded %d bytes, packedRecordLen says %d", fi, len(buf), want)
		}
		got, total, ref, err := decodePackedRecord(buf, nil)
		if err != nil {
			t.Fatalf("fixture %d: %v", fi, err)
		}
		if total != len(n.Conn) || ref != noOverflow {
			t.Fatalf("fixture %d: total %d ref %d, want %d %d", fi, total, ref, len(n.Conn), noOverflow)
		}
		requireNodeBitsEqual(t, "fixture", &n, &got)
	}
}

// TestPackedRecordSpillRoundTrip exercises the overflow split: a record
// encoded with a partial inline prefix decodes to exactly that prefix
// plus the chain head, and packedSplit never overruns a page.
func TestPackedRecordSpillRoundTrip(t *testing.T) {
	var buf []byte
	for fi, n := range packedFixtures() {
		for _, inline := range []int{0, len(n.Conn) / 2} {
			if inline >= len(n.Conn) {
				continue
			}
			buf = encodePackedRecord(&n, 4242, inline, buf)
			if want := packedRecordLen(&n, inline, true); len(buf) != want {
				t.Fatalf("fixture %d/%d: encoded %d bytes, want %d", fi, inline, len(buf), want)
			}
			got, total, ref, err := decodePackedRecord(buf, nil)
			if err != nil {
				t.Fatalf("fixture %d/%d: %v", fi, inline, err)
			}
			if total != len(n.Conn) || ref != 4242 {
				t.Fatalf("fixture %d/%d: total %d ref %d", fi, inline, total, ref)
			}
			if len(got.Conn) != inline {
				t.Fatalf("fixture %d/%d: %d inline IDs decoded", fi, inline, len(got.Conn))
			}
			for i := 0; i < inline; i++ {
				if got.Conn[i] != n.Conn[i] {
					t.Fatalf("fixture %d/%d: conn[%d] = %d, want %d", fi, inline, i, got.Conn[i], n.Conn[i])
				}
			}
		}
	}
}

// TestDyadicIndexExcludesNonExact: the fast path must reject every value
// whose round trip would not be bit-identical.
func TestDyadicIndexExcludesNonExact(t *testing.T) {
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1),
		0.1, math.Pi, math.SmallestNonzeroFloat64, math.MaxFloat64,
		float64(int64(1)<<41+4096) / 4096, 1.0 / 8192}
	for _, v := range bad {
		if m, ok := dyadicIndex(v); ok {
			t.Fatalf("dyadicIndex(%g) = %d, want rejection", v, m)
		}
	}
	good := map[float64]int64{0: 0, 0.5: 2048, -0.25: -1024, 1: 4096,
		3.0 / 4096: 3, float64(int64(1)<<41) / 4096: 1 << 41}
	for v, want := range good {
		m, ok := dyadicIndex(v)
		if !ok || m != want {
			t.Fatalf("dyadicIndex(%g) = %d,%v, want %d,true", v, m, ok, want)
		}
	}
}

// TestPackedDensity is the tentpole's quantitative claim: packed pages
// hold at least 1.7x more records than the plain variable encoding on a
// real dataset (the acceptance floor; the measured ratio is >2x).
func TestPackedDensity(t *testing.T) {
	ds := buildDatasetOnly(t, 33, "highland")
	density := func(l Layout) float64 {
		s, err := BuildStore(ds, StorePools{Layout: l})
		if err != nil {
			t.Fatal(err)
		}
		return float64(s.NumNodes()) / float64(s.DataPages())
	}
	connect, packed := density(LayoutConnect), density(LayoutPacked)
	t.Logf("records/page: connect %.1f, packed %.1f (%.2fx)", connect, packed, packed/connect)
	if packed < 1.7*connect {
		t.Fatalf("packed density %.1f rec/page < 1.7x connect %.1f", packed, connect)
	}
}

// TestPackedOverflowCoLocated mirrors the connect-layout property for
// the packed encoding: spilled chains stay inside the node heap, and a
// cold full-LOD query never touches the overflow file.
func TestPackedOverflowCoLocated(t *testing.T) {
	ds := inflateConn(buildDatasetOnly(t, 9, "highland"), overflowLengths...)
	s, err := BuildStore(ds, StorePools{Layout: LayoutPacked})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.OverflowPages(); got != 0 {
		t.Fatalf("packed store has %d overflow pages, want 0", got)
	}
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if _, err := s.ViewpointIndependent(fullRect(), eAtPercentile(ds, 0.5)); err != nil {
		t.Fatal(err)
	}
	bd := s.Breakdown()
	if bd.Overflow != 0 {
		t.Fatalf("packed store read %d overflow-file pages, want 0", bd.Overflow)
	}
	if bd.Data == 0 {
		t.Fatal("cold query read no data pages")
	}
}

// TestPackedLayoutPersistRoundTrip writes a packed store (plain and
// checksummed) to disk and reopens it: the v4 meta plumbing, the
// compressed heap, and spilled chains must all survive, answering
// exactly like the in-memory store.
func TestPackedLayoutPersistRoundTrip(t *testing.T) {
	ds := inflateConn(buildDatasetOnly(t, 8, "crater"), overflowLengths...)
	mem, err := BuildStore(ds, StorePools{Layout: LayoutPacked})
	if err != nil {
		t.Fatal(err)
	}
	e := eAtPercentile(ds, 0.4)
	want, err := mem.ViewpointIndependent(fullRect(), e)
	if err != nil {
		t.Fatal(err)
	}
	for _, checksums := range []bool{false, true} {
		dir := t.TempDir()
		s, err := BuildStoreAt(ds, StorePools{Layout: LayoutPacked, Checksums: checksums}, dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenStore(dir, StorePools{})
		if err != nil {
			t.Fatal(err)
		}
		if re.Layout() != LayoutPacked {
			t.Fatalf("reopened layout %v, want packed", re.Layout())
		}
		got, err := re.ViewpointIndependent(fullRect(), e)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "reopened packed store", want, got)
		for i := range overflowLengths {
			id := int64(i+1) * (int64(len(ds.Conn)) / int64(len(overflowLengths)+1))
			n, err := re.FetchByID(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(n.Conn) != len(ds.Conn[id]) {
				t.Fatalf("node %d: %d conn IDs after reopen, want %d", id, len(n.Conn), len(ds.Conn[id]))
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPackedLayoutVersionGate: a packed store whose sidecar claims a
// pre-v4 format must be refused — older readers have no packed decoder,
// so the version is load-bearing.
func TestPackedLayoutVersionGate(t *testing.T) {
	ds := buildDatasetOnly(t, 6, "highland")
	dir := t.TempDir()
	s, err := BuildStoreAt(ds, StorePools{Layout: LayoutPacked}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	metaPath := filepath.Join(dir, metaFileName)
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	var meta map[string]interface{}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	meta["version"] = 3
	raw, err = json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(metaPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStore(dir, StorePools{})
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("pre-v4 packed store must be refused, got %v", err)
	}
}

// TestPackedDecodeRejectsCorruption: hand-built corruptions must surface
// as ErrCorrupt, not panics or silent misreads.
func TestPackedDecodeRejectsCorruption(t *testing.T) {
	n := packedFixtures()[0]
	valid := encodePackedRecord(&n, noOverflow, len(n.Conn), nil)
	cases := map[string][]byte{
		"empty":           {},
		"id only":         valid[:1],
		"truncated":       valid[:len(valid)-1],
		"reserved bit":    append([]byte{}, valid...),
		"conflicting dy":  append([]byte{}, valid...),
		"truncated float": valid[:4],
	}
	// Set a reserved bitmap bit (bitmap starts right after the 1-byte ID
	// for this fixture).
	cases["reserved bit"][2] |= 0xE0
	// ELow zero + dyadic simultaneously.
	cases["conflicting dy"][2] |= 0x03 // bits 8 (pkELowZero) and 9 (pkELowDyadic)
	for name, buf := range cases {
		_, _, _, err := decodePackedRecord(buf, nil)
		if err == nil {
			t.Errorf("%s: decode accepted corrupt record", name)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
}

// FuzzPackedRecordDecode feeds arbitrary bytes to the packed decoder:
// it must never panic, never allocate unboundedly, and classify every
// failure as ErrCorrupt. Valid decodes must satisfy the encoding's
// invariants (inline list within the declared total, sorted deltas
// reconstructed consistently).
func FuzzPackedRecordDecode(f *testing.F) {
	for _, n := range packedFixtures() {
		f.Add(encodePackedRecord(&n, noOverflow, len(n.Conn), nil))
		if len(n.Conn) > 1 {
			f.Add(encodePackedRecord(&n, 99, 1, nil))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add([]byte{0x00, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var arena connArena
		n, total, ref, err := decodePackedRecord(data, &arena)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if len(n.Conn) > total {
			t.Fatalf("decoded %d inline IDs but total is %d", len(n.Conn), total)
		}
		if ref == noOverflow && len(n.Conn) != total {
			t.Fatalf("no overflow but %d of %d IDs inline", len(n.Conn), total)
		}
	})
}
