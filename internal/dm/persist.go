package dm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dmesh/internal/geom"
	"dmesh/internal/rtree"
	"dmesh/internal/storage/btree"
	"dmesh/internal/storage/heapfile"
	"dmesh/internal/storage/pager"
)

// File names inside a store directory.
const (
	heapFileName = "points.heap"
	overFileName = "conn.overflow"
	rtFileName   = "segments.rtree"
	idxFileName  = "id.btree"
	metaFileName = "meta.json"
)

// storeMeta is the sidecar metadata a store directory carries.
type storeMeta struct {
	Version int      `json:"version"`
	MaxE    float64  `json:"max_e"`
	Space   geom.Box `json:"space"`
	Layout  Layout   `json:"layout"`
	// Checksums records whether the page files carry the interleaved
	// CRC-32C layout of pager.Checksummed (meta version 2+); reading a
	// checksummed store without the wrapper would misinterpret the page
	// numbering, so the choice is part of the on-disk format.
	Checksums bool `json:"checksums,omitempty"`
}

// metaVersion is the current on-disk format. Version 4 adds the
// compressed packed-record encoding of LayoutPacked; version 3 added the
// variable-record heap encoding of LayoutConnect; versions 1 (no
// checksum support) and 2 (fixed layouts only) remain readable.
const metaVersion = 4

// BuildStoreAt builds the Direct Mesh store in dir as regular files, so it
// can be reopened later with OpenStore. The directory is created if
// needed; it must not already contain a store.
func BuildStoreAt(ds *Dataset, pools StorePools, dir string) (*Store, error) {
	nodes := make([]Node, len(ds.Tree.Nodes))
	for i := range nodes {
		nodes[i] = ds.Node(int64(i))
	}
	return buildNodesAt(nodes, ds.Tree.MaxE, pools, dir)
}

// buildNodesAt lays materialized nodes out in dir as regular files (see
// BuildStoreAt); Repack enters here with nodes read from another store.
func buildNodesAt(nodes []Node, maxE float64, pools StorePools, dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dm: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, metaFileName)); err == nil {
		return nil, fmt.Errorf("dm: %s already contains a store", dir)
	}
	backends, err := openBackends(dir, false)
	if err != nil {
		return nil, err
	}
	s, err := buildNodes(nodes, maxE, pools, backends)
	if err != nil {
		return nil, err
	}
	meta := storeMeta{Version: metaVersion, MaxE: s.maxE, Space: s.space,
		Layout: pools.Layout, Checksums: pools.Checksums}
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dm: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFileName), raw, 0o644); err != nil {
		return nil, fmt.Errorf("dm: %w", err)
	}
	if err := s.Flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenStore opens a store previously written by BuildStoreAt.
func OpenStore(dir string, pools StorePools) (*Store, error) {
	pools.defaults()
	raw, err := os.ReadFile(filepath.Join(dir, metaFileName))
	if err != nil {
		return nil, fmt.Errorf("dm: open store: %w", err)
	}
	var meta storeMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("dm: open store: %w", err)
	}
	if meta.Version < 1 || meta.Version > metaVersion {
		return nil, fmt.Errorf("dm: store version %d, want 1..%d", meta.Version, metaVersion)
	}
	if meta.Layout == LayoutConnect && meta.Version < 3 {
		return nil, fmt.Errorf("dm: connect layout requires store version 3, got %d", meta.Version)
	}
	if meta.Layout == LayoutPacked && meta.Version < 4 {
		return nil, fmt.Errorf("dm: packed layout requires store version 4, got %d", meta.Version)
	}
	// The on-disk layout dictates the checksum setting; the caller's pools
	// only size the buffers.
	pools.Checksums = meta.Checksums
	backends, err := openBackends(dir, true)
	if err != nil {
		return nil, err
	}
	for i := range backends {
		b, err := pools.wrap(backends[i])
		if err != nil {
			return nil, fmt.Errorf("dm: open store: %w", err)
		}
		backends[i] = b
	}
	// With checksums on, sweep the whole store before serving so
	// corruption and torn writes are caught at open, not mid-query. These
	// reads bypass the pagers and are not counted as disk accesses.
	if meta.Checksums {
		names := [4]string{heapFileName, overFileName, rtFileName, idxFileName}
		for i, b := range backends {
			if err := b.(*pager.ChecksumBackend).VerifyAll(); err != nil {
				return nil, fmt.Errorf("dm: open store: %s: %w", names[i], err)
			}
		}
	}
	s := &Store{
		heapP:  pools.newPager(backends[0], pools.Data),
		overP:  pools.newPager(backends[1], pools.Overflow),
		rtP:    pools.newPager(backends[2], pools.Index),
		idxP:   pools.newPager(backends[3], pools.IDIndex),
		layout: meta.Layout,
		maxE:   meta.MaxE,
		space:  meta.Space,
	}
	if meta.Layout.variableRecords() {
		if s.vheap, err = heapfile.OpenVar(s.heapP); err != nil {
			return nil, fmt.Errorf("dm: open heap: %w", err)
		}
	} else if s.heap, err = heapfile.Open(s.heapP); err != nil {
		return nil, fmt.Errorf("dm: open heap: %w", err)
	}
	if s.over, err = heapfile.Open(s.overP); err != nil {
		return nil, fmt.Errorf("dm: open overflow: %w", err)
	}
	if s.rt, err = rtree.Open(s.rtP); err != nil {
		return nil, fmt.Errorf("dm: open r*-tree: %w", err)
	}
	if s.idx, err = btree.Open(s.idxP); err != nil {
		return nil, fmt.Errorf("dm: open id index: %w", err)
	}
	return s, nil
}

// openBackends opens the four page files of a store directory. With
// mustExist, missing files are an error.
func openBackends(dir string, mustExist bool) ([4]pager.Backend, error) {
	var out [4]pager.Backend
	names := [4]string{heapFileName, overFileName, rtFileName, idxFileName}
	for i, name := range names {
		path := filepath.Join(dir, name)
		if mustExist {
			if _, err := os.Stat(path); err != nil {
				return out, fmt.Errorf("dm: %w", err)
			}
		}
		b, err := pager.OpenFile(path)
		if err != nil {
			return out, fmt.Errorf("dm: open %s: %w", name, err)
		}
		out[i] = b
	}
	return out, nil
}

// Flush writes all dirty pages through to the backends.
func (s *Store) Flush() error {
	for _, p := range s.pagers() {
		if err := p.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes the store's files.
func (s *Store) Close() error {
	for _, p := range s.pagers() {
		if err := p.Close(); err != nil {
			return err
		}
	}
	return nil
}
