package dm

import (
	"fmt"

	"dmesh/internal/costmodel"
	"dmesh/internal/geom"
	"dmesh/internal/storage/heapfile"
)

// fetchBox retrieves every node whose vertical segment intersects box:
// one R*-tree range query plus the data-page reads for the matching
// records. Results accumulate into dst (keyed by node ID).
func (s *Store) fetchBox(box geom.Box, dst map[int64]*Node) (int, error) {
	var rids []heapfile.RID
	err := s.rt.Search(box, func(ref int64, _ geom.Box) bool {
		rids = append(rids, heapfile.RID(ref))
		return true
	})
	if err != nil {
		return 0, fmt.Errorf("dm: index search: %w", err)
	}
	buf := make([]byte, RecordSize)
	obuf := make([]byte, OverflowRecordSize)
	fetched := 0
	for _, rid := range rids {
		n, err := s.fetchRecord(rid, buf, obuf)
		if err != nil {
			return fetched, err
		}
		fetched++
		if _, ok := dst[n.ID]; !ok {
			node := n
			dst[n.ID] = &node
		}
	}
	return fetched, nil
}

// ViewpointIndependent answers Q(M, r, e): a single range query with the
// query plane r x [e, e] retrieves exactly the nodes whose LOD interval
// covers e (Section 5.1), and their connection lists triangulate the
// result with no further I/O.
func (s *Store) ViewpointIndependent(r geom.Rect, e float64) (*Result, error) {
	// Stored segments clamp the roots' infinite tops to the dataset
	// maximum, so fetch at min(e, maxE): a query coarser than the whole
	// dataset still returns the root approximation. The liveness filter
	// below keeps the caller's e (root intervals are stored unbounded).
	fetchE := e
	if fetchE > s.maxE {
		fetchE = s.maxE
	}
	fetched := make(map[int64]*Node)
	nf, err := s.fetchBox(geom.BoxFromRect(r, fetchE, fetchE), fetched)
	if err != nil {
		return nil, err
	}
	// The R*-tree stores closed boxes but LOD intervals are half-open:
	// a node whose EHigh equals e is fetched yet not part of the LOD-e
	// approximation. Filter, keeping the I/O already (correctly) paid.
	live := make(map[int64]*Node, len(fetched))
	for id, n := range fetched {
		if n.Interval().Contains(e) {
			live[id] = n
		}
	}
	res := assembleUniform(live)
	res.FetchedRecords = nf
	res.Strips = 1
	return res, nil
}

// SingleBase answers a viewpoint-dependent query with Algorithm 1 of the
// paper: one query cube from the plane's lowest to highest LOD, a mesh on
// the top plane, then refinement down to the query plane. The refinement
// data (every node between the plane and the top plane over r) is in the
// cube, so no further I/O is needed.
func (s *Store) SingleBase(qp geom.QueryPlane) (*Result, error) {
	fetched := make(map[int64]*Node)
	nf, err := s.fetchBox(geom.BoxFromRect(qp.R, qp.EMin, qp.EMax), fetched)
	if err != nil {
		return nil, err
	}
	res := s.assemblePlane(qp, fetched)
	res.FetchedRecords = nf
	res.Strips = 1
	return res, nil
}

// MultiBase answers a viewpoint-dependent query with the optimization of
// Section 5.3: the cost model plans several query cubes hugging the query
// plane (recursive middle splits while formula (7) predicts a disk-access
// gain), each cube is fetched with its own range query, and the combined
// records build the mesh. maxStrips caps the number of cubes (0 = the
// planner's default).
func (s *Store) MultiBase(qp geom.QueryPlane, model *costmodel.Model, maxStrips int) (*Result, error) {
	if model == nil {
		return nil, fmt.Errorf("dm: MultiBase requires a cost model")
	}
	return s.ExecuteStrips(qp, model.PlanStrips(qp, maxStrips))
}

// ExecuteStrips answers a viewpoint-dependent query with an explicit cube
// plan (one range query per strip). MultiBase uses it with the optimizer's
// plan; ablations pass fixed plans (costmodel.EqualStrips).
func (s *Store) ExecuteStrips(qp geom.QueryPlane, strips []costmodel.Strip) (*Result, error) {
	fetched := make(map[int64]*Node)
	total := 0
	for _, st := range strips {
		nf, err := s.fetchBox(st.Box(), fetched)
		if err != nil {
			return nil, err
		}
		total += nf
	}
	res := s.assemblePlane(qp, fetched)
	res.FetchedRecords = total
	res.Strips = len(strips)
	return res, nil
}

// assemblePlane turns the fetched cube contents into the approximation on
// the query plane: the live set holds every node whose LOD interval
// contains the plane's requirement at the node's own position, and
// connectivity lifts connection pairs to their live representatives.
// A degenerate plane (EMin == EMax) reduces to the uniform assembly.
func (s *Store) assemblePlane(qp geom.QueryPlane, fetched map[int64]*Node) *Result {
	live := make(map[int64]*Node, len(fetched))
	for id, n := range fetched {
		if n.Interval().Contains(qp.EAt(n.Pos.X, n.Pos.Y)) {
			live[id] = n
		}
	}
	if qp.EMin == qp.EMax {
		return assembleUniform(live)
	}
	return assembleLifted(fetched, live)
}
