package dm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dmesh/internal/costmodel"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
	"dmesh/internal/storage/heapfile"
)

// fetcher runs the range queries of one Direct Mesh query, reusing the
// RID list and record/overflow buffers across strips and accumulating the
// fetched nodes (keyed by node ID) in one map pre-sized from the first
// index hit count.
type fetcher struct {
	s     *Store
	rids  []heapfile.RID
	bufs  recBufs
	nodes map[int64]*Node
	// track records the IDs of nodes newly added to the map in added —
	// the coherent engine points nodes at its retained map and needs to
	// know which fetched nodes it had not seen before.
	track bool
	added []int64
	// tr carries the owning view's tracer (nil when tracing is off, and
	// forced nil in parallel strip workers — a trace is single-goroutine).
	tr *obs.Trace
}

func (s *Store) newFetcher() *fetcher {
	return &fetcher{
		s:    s,
		bufs: newRecBufs(),
		tr:   s.tr,
	}
}

// fetched returns the accumulated node map (never nil).
func (f *fetcher) fetched() map[int64]*Node {
	if f.nodes == nil {
		f.nodes = make(map[int64]*Node)
	}
	return f.nodes
}

// fetchBox retrieves every node whose vertical segment intersects box:
// one R*-tree range query plus the data-page reads for the matching
// records. It returns the number of records read (duplicates across
// strips are real I/O and count).
func (f *fetcher) fetchBox(box geom.Box) (int, error) {
	f.rids = f.rids[:0]
	f.tr.Begin(obs.PhaseRTree)
	err := f.s.rt.Search(box, func(ref int64, _ geom.Box) bool {
		f.rids = append(f.rids, heapfile.RID(ref))
		return true
	})
	f.tr.End()
	if err != nil {
		return 0, fmt.Errorf("dm: index search: %w", err)
	}
	if f.nodes == nil {
		f.nodes = make(map[int64]*Node, len(f.rids))
	}
	fetched := 0
	f.tr.Begin(obs.PhaseFetch)
	for _, rid := range f.rids {
		n, err := f.s.fetchRecord(rid, &f.bufs, f.tr)
		if err != nil {
			f.tr.End()
			return fetched, err
		}
		fetched++
		if _, ok := f.nodes[n.ID]; !ok {
			node := n
			f.nodes[n.ID] = &node
			if f.track {
				f.added = append(f.added, n.ID)
			}
		}
	}
	f.tr.End()
	return fetched, nil
}

// ViewpointIndependent answers Q(M, r, e): a single range query with the
// query plane r x [e, e] retrieves exactly the nodes whose LOD interval
// covers e (Section 5.1), and their connection lists triangulate the
// result with no further I/O.
func (s *Store) ViewpointIndependent(r geom.Rect, e float64) (*Result, error) {
	s.tr.Begin(obs.PhaseQuery)
	defer s.tr.End()
	// Stored segments clamp the roots' infinite tops to the dataset
	// maximum, so fetch at min(e, maxE): a query coarser than the whole
	// dataset still returns the root approximation. The liveness filter
	// below keeps the caller's e (root intervals are stored unbounded).
	fetchE := e
	if fetchE > s.maxE {
		fetchE = s.maxE
	}
	f := s.newFetcher()
	nf, err := f.fetchBox(geom.BoxFromRect(r, fetchE, fetchE))
	if err != nil {
		return nil, err
	}
	fetched := f.fetched()
	s.tr.Begin(obs.PhaseTriangulate)
	// The R*-tree stores closed boxes but LOD intervals are half-open:
	// a node whose EHigh equals e is fetched yet not part of the LOD-e
	// approximation. Filter, keeping the I/O already (correctly) paid.
	live := make(map[int64]*Node, len(fetched))
	for id, n := range fetched {
		if n.Interval().Contains(e) {
			live[id] = n
		}
	}
	res := assembleUniform(live)
	s.tr.End()
	res.FetchedRecords = nf
	res.Strips = 1
	return res, nil
}

// SingleBase answers a viewpoint-dependent query with Algorithm 1 of the
// paper: one query cube from the plane's lowest to highest LOD, a mesh on
// the top plane, then refinement down to the query plane. The refinement
// data (every node between the plane and the top plane over r) is in the
// cube, so no further I/O is needed.
func (s *Store) SingleBase(qp geom.QueryPlane) (*Result, error) {
	s.tr.Begin(obs.PhaseQuery)
	defer s.tr.End()
	f := s.newFetcher()
	nf, err := f.fetchBox(geom.BoxFromRect(qp.R, qp.EMin, qp.EMax))
	if err != nil {
		return nil, err
	}
	res := s.assemblePlane(qp, f.fetched())
	res.FetchedRecords = nf
	res.Strips = 1
	return res, nil
}

// MultiBase answers a viewpoint-dependent query with the optimization of
// Section 5.3: the cost model plans several query cubes hugging the query
// plane (recursive middle splits while formula (7) predicts a disk-access
// gain), each cube is fetched with its own range query, and the combined
// records build the mesh. maxStrips caps the number of cubes (0 = the
// planner's default).
func (s *Store) MultiBase(qp geom.QueryPlane, model *costmodel.Model, maxStrips int) (*Result, error) {
	if model == nil {
		return nil, fmt.Errorf("dm: MultiBase requires a cost model")
	}
	s.tr.Begin(obs.PhaseQuery)
	defer s.tr.End()
	s.tr.Begin(obs.PhasePlan)
	strips := model.PlanStrips(qp, maxStrips)
	s.tr.End()
	return s.executeStrips(qp, strips)
}

// ExecuteStrips answers a viewpoint-dependent query with an explicit cube
// plan (one range query per strip). MultiBase uses it with the optimizer's
// plan; ablations pass fixed plans (costmodel.EqualStrips). With
// SetStripWorkers > 1 the strips are fetched by a bounded worker pool;
// the serial path is the measurement default.
func (s *Store) ExecuteStrips(qp geom.QueryPlane, strips []costmodel.Strip) (*Result, error) {
	s.tr.Begin(obs.PhaseQuery)
	defer s.tr.End()
	return s.executeStrips(qp, strips)
}

// executeStrips runs an explicit plan under an already-open root span
// (ExecuteStrips and MultiBase both land here).
func (s *Store) executeStrips(qp geom.QueryPlane, strips []costmodel.Strip) (*Result, error) {
	if workers := s.stripWorkers; workers > 1 && len(strips) > 1 {
		if workers > len(strips) {
			workers = len(strips)
		}
		return s.executeStripsParallel(qp, strips, workers)
	}
	f := s.newFetcher()
	total := 0
	for _, st := range strips {
		nf, err := f.fetchBox(st.Box())
		if err != nil {
			return nil, err
		}
		total += nf
	}
	res := s.assemblePlane(qp, f.fetched())
	res.FetchedRecords = total
	res.Strips = len(strips)
	return res, nil
}

// executeStripsParallel fans one plan's strips out over workers
// goroutines. The strips share the store's buffer pool (each page is read
// from the backend at most once, under its shard lock), so the union of
// pages read matches the serial execution; per-strip node maps merge in
// strip order with sorted node IDs, keeping the merged map — and
// therefore the assembled mesh — identical to the serial result.
func (s *Store) executeStripsParallel(qp geom.QueryPlane, strips []costmodel.Strip, workers int) (*Result, error) {
	type stripResult struct {
		nodes map[int64]*Node
		nf    int
		err   error
	}
	results := make([]stripResult, len(strips))
	var next atomic.Int64
	var wg sync.WaitGroup
	// A trace is single-goroutine, so the workers run untraced and the
	// whole fan-out is attributed to one fetch span: the parallel path
	// trades per-phase resolution (rtree vs fetch vs overflow) for
	// wall-clock, keeping the total exact.
	s.tr.Begin(obs.PhaseFetch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := s.newFetcher()
			f.tr = nil
			for {
				i := int(next.Add(1)) - 1
				if i >= len(strips) {
					return
				}
				f.nodes = nil // fresh per-strip map, reused buffers
				nf, err := f.fetchBox(strips[i].Box())
				results[i] = stripResult{nodes: f.fetched(), nf: nf, err: err}
			}
		}()
	}
	wg.Wait()
	s.tr.End()

	total, size := 0, 0
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		total += results[i].nf
		size += len(results[i].nodes)
	}
	fetched := make(map[int64]*Node, size)
	ids := make([]int64, 0, size)
	for i := range results {
		ids = ids[:0]
		for id := range results[i].nodes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			if _, ok := fetched[id]; !ok {
				fetched[id] = results[i].nodes[id]
			}
		}
	}
	res := s.assemblePlane(qp, fetched)
	res.FetchedRecords = total
	res.Strips = len(strips)
	return res, nil
}

// assemblePlane turns the fetched cube contents into the approximation on
// the query plane: the live set holds every node whose LOD interval
// contains the plane's requirement at the node's own position, and
// connectivity lifts connection pairs to their live representatives.
// A degenerate plane (EMin == EMax) reduces to the uniform assembly.
func (s *Store) assemblePlane(qp geom.QueryPlane, fetched map[int64]*Node) *Result {
	s.tr.Begin(obs.PhaseTriangulate)
	defer s.tr.End()
	live := make(map[int64]*Node, len(fetched))
	for id, n := range fetched {
		if n.Interval().Contains(qp.EAt(n.Pos.X, n.Pos.Y)) {
			live[id] = n
		}
	}
	if qp.EMin == qp.EMax {
		return assembleUniform(live)
	}
	return assembleLifted(fetched, live)
}
