package dm

import (
	"testing"

	"dmesh/internal/geom"
)

// TestLayoutsProduceIdenticalResults verifies that the physical record
// order (STR, Hilbert, row-major) changes cost but never answers: every
// layout returns the same mesh for the same query.
func TestLayoutsProduceIdenticalResults(t *testing.T) {
	ds, _ := buildDataset(t, 8, "highland")
	layouts := []Layout{LayoutSTR, LayoutHilbert, LayoutRowMajor}
	stores := make([]*Store, len(layouts))
	for i, l := range layouts {
		s, err := BuildStore(ds, StorePools{Layout: l})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	queries := []struct {
		r geom.Rect
		e float64
	}{
		{fullRect(), eAtPercentile(ds, 0.5)},
		{geom.Rect{MinX: 0.2, MinY: 0.3, MaxX: 0.7, MaxY: 0.9}, eAtPercentile(ds, 0.2)},
		{geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.5, MaxY: 0.5}, eAtPercentile(ds, 0.8)},
	}
	for qi, q := range queries {
		base, err := stores[0].ViewpointIndependent(q.r, q.e)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(stores); i++ {
			res, err := stores[i].ViewpointIndependent(q.r, q.e)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Vertices) != len(base.Vertices) || len(res.Edges) != len(base.Edges) ||
				len(res.Triangles) != len(base.Triangles) {
				t.Fatalf("query %d: layout %v differs from STR: %d/%d vertices",
					qi, layouts[i], len(res.Vertices), len(base.Vertices))
			}
			for id := range base.Vertices {
				if _, ok := res.Vertices[id]; !ok {
					t.Fatalf("query %d: layout %v missing vertex %d", qi, layouts[i], id)
				}
			}
		}
	}
}

func TestUnknownLayoutRejected(t *testing.T) {
	ds, _ := buildDataset(t, 5, "highland")
	if _, err := BuildStore(ds, StorePools{Layout: Layout(99)}); err == nil {
		t.Fatal("unknown layout must be rejected")
	}
}

// TestSTRLayoutCheaperThanRowMajor verifies the clustering ablation's
// premise: the index-clustered layout reads fewer pages than an
// unclustered one on a typical query.
func TestSTRLayoutCheaperThanRowMajor(t *testing.T) {
	// Needs enough pages for clustering to matter.
	ds, _ := buildDataset(t, 33, "highland")
	str, err := BuildStore(ds, StorePools{Layout: LayoutSTR})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := BuildStore(ds, StorePools{Layout: LayoutRowMajor})
	if err != nil {
		t.Fatal(err)
	}
	roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	e := eAtPercentile(ds, 0.5)

	measure := func(s *Store) uint64 {
		if err := s.DropCaches(); err != nil {
			t.Fatal(err)
		}
		s.ResetStats()
		if _, err := s.ViewpointIndependent(roi, e); err != nil {
			t.Fatal(err)
		}
		return s.DiskAccesses()
	}
	daSTR, daRM := measure(str), measure(rm)
	if daSTR >= daRM {
		t.Fatalf("STR layout (%d DA) should beat row-major (%d DA)", daSTR, daRM)
	}
}

// TestOverflowChains exercises connection lists longer than the inline
// capacity end to end: nodes with large lifetime neighborhoods (near the
// root) must come back complete from the store.
func TestOverflowChains(t *testing.T) {
	ds, _ := buildDataset(t, 10, "crater")
	long := 0
	for _, c := range ds.Conn {
		if len(c) > ConnInline {
			long++
		}
	}
	if long == 0 {
		t.Skip("no overflowing connection lists at this scale")
	}
	s := newTestStore(t, ds)
	checked := 0
	for id, c := range ds.Conn {
		if len(c) <= ConnInline {
			continue
		}
		n, err := s.FetchByID(int64(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(n.Conn) != len(c) {
			t.Fatalf("node %d: %d conn IDs from store, want %d", id, len(n.Conn), len(c))
		}
		for i := range c {
			if n.Conn[i] != c[i] {
				t.Fatalf("node %d conn[%d] = %d, want %d", id, i, n.Conn[i], c[i])
			}
		}
		checked++
		if checked >= 25 {
			break
		}
	}
}
