package dm

import (
	"testing"

	"dmesh/internal/geom"
)

// allLayouts is every physical layout, fixed encodings first.
var allLayouts = []Layout{LayoutSTR, LayoutHilbert, LayoutRowMajor, LayoutConnect, LayoutPacked}

// inflateConn returns a copy of ds whose connection lists include
// synthetic high-valence fixtures of the given lengths, spread across
// distinct nodes. Padding IDs start at len(nodes), beyond every real
// node: they are never indexed, never fetched, and never live, so query
// answers are unchanged — but record encoding, overflow chains, and the
// connect layout's spill path all get exercised at real chain lengths.
// Lists stay sorted ascending and unique (real IDs < N <= padding IDs).
func inflateConn(ds *Dataset, lengths ...int) *Dataset {
	conn := make([][]int64, len(ds.Conn))
	copy(conn, ds.Conn)
	n := int64(len(ds.Conn))
	stride := n / int64(len(lengths)+1)
	for i, length := range lengths {
		id := int64(i+1) * stride
		padded := append([]int64(nil), ds.Conn[id]...)
		for k := int64(0); len(padded) < length; k++ {
			padded = append(padded, n+id*100000+k)
		}
		conn[id] = padded
	}
	return &Dataset{Tree: ds.Tree, Conn: conn}
}

// overflowLengths covers every encoding regime: just past the fixed
// inline capacity (12), a multi-record fixed chain, past the connect
// layout's inline page capacity (498), a multi-record connect chain, and
// a list long enough that even the packed encoding's 1-2 byte deltas
// overrun a slotted page and spill (the fixture's padding IDs are
// consecutive, so ~4088 packed bytes need >4000 entries).
var overflowLengths = []int{ConnInline + 1, 5 * OverflowFanout, ConnectInlineMax + 10, 2*connectOverflowFanout + 200, 4500}

// TestLayoutsProduceIdenticalResults verifies that the physical record
// order (STR, Hilbert, row-major, connect) changes cost but never
// answers: every layout returns the same mesh for the same query. The
// dataset carries inflated connection lists so the overflow encodings of
// both record formats are in play.
func TestLayoutsProduceIdenticalResults(t *testing.T) {
	base, _ := buildDataset(t, 8, "highland")
	ds := inflateConn(base, overflowLengths...)
	layouts := allLayouts
	stores := make([]*Store, len(layouts))
	for i, l := range layouts {
		s, err := BuildStore(ds, StorePools{Layout: l})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	queries := []struct {
		r geom.Rect
		e float64
	}{
		{fullRect(), eAtPercentile(ds, 0.5)},
		{geom.Rect{MinX: 0.2, MinY: 0.3, MaxX: 0.7, MaxY: 0.9}, eAtPercentile(ds, 0.2)},
		{geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.5, MaxY: 0.5}, eAtPercentile(ds, 0.8)},
	}
	for qi, q := range queries {
		base, err := stores[0].ViewpointIndependent(q.r, q.e)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(stores); i++ {
			res, err := stores[i].ViewpointIndependent(q.r, q.e)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Vertices) != len(base.Vertices) || len(res.Edges) != len(base.Edges) ||
				len(res.Triangles) != len(base.Triangles) {
				t.Fatalf("query %d: layout %v differs from STR: %d/%d vertices",
					qi, layouts[i], len(res.Vertices), len(base.Vertices))
			}
			for id := range base.Vertices {
				if _, ok := res.Vertices[id]; !ok {
					t.Fatalf("query %d: layout %v missing vertex %d", qi, layouts[i], id)
				}
			}
		}
	}
}

func TestUnknownLayoutRejected(t *testing.T) {
	ds, _ := buildDataset(t, 5, "highland")
	if _, err := BuildStore(ds, StorePools{Layout: Layout(99)}); err == nil {
		t.Fatal("unknown layout must be rejected")
	}
}

// TestSTRLayoutCheaperThanRowMajor verifies the clustering ablation's
// premise: the index-clustered layout reads fewer pages than an
// unclustered one on a typical query.
func TestSTRLayoutCheaperThanRowMajor(t *testing.T) {
	// Needs enough pages for clustering to matter.
	ds, _ := buildDataset(t, 33, "highland")
	str, err := BuildStore(ds, StorePools{Layout: LayoutSTR})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := BuildStore(ds, StorePools{Layout: LayoutRowMajor})
	if err != nil {
		t.Fatal(err)
	}
	roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	e := eAtPercentile(ds, 0.5)

	measure := func(s *Store) uint64 {
		if err := s.DropCaches(); err != nil {
			t.Fatal(err)
		}
		s.ResetStats()
		if _, err := s.ViewpointIndependent(roi, e); err != nil {
			t.Fatal(err)
		}
		return s.DiskAccesses()
	}
	daSTR, daRM := measure(str), measure(rm)
	if daSTR >= daRM {
		t.Fatalf("STR layout (%d DA) should beat row-major (%d DA)", daSTR, daRM)
	}
}

// TestOverflowChains exercises connection lists longer than the inline
// capacities end to end, for every layout: the synthetic high-valence
// fixture guarantees chains exist at any dataset scale (real datasets at
// test sizes rarely overflow), so the chain walk is always exercised —
// single fixed records, multi-record fixed chains, and the connect
// layout's co-located variable spill.
func TestOverflowChains(t *testing.T) {
	ds := inflateConn(buildDatasetOnly(t, 10, "crater"), overflowLengths...)
	long := 0
	for _, c := range ds.Conn {
		if len(c) > ConnInline {
			long++
		}
	}
	if long < len(overflowLengths) {
		t.Fatalf("fixture produced %d overflowing lists, want >= %d", long, len(overflowLengths))
	}
	for _, layout := range allLayouts {
		s, err := BuildStore(ds, StorePools{Layout: layout})
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		checked := 0
		for id, c := range ds.Conn {
			if len(c) <= ConnInline {
				continue
			}
			n, err := s.FetchByID(int64(id))
			if err != nil {
				t.Fatalf("%v: %v", layout, err)
			}
			if len(n.Conn) != len(c) {
				t.Fatalf("%v: node %d: %d conn IDs from store, want %d", layout, id, len(n.Conn), len(c))
			}
			for i := range c {
				if n.Conn[i] != c[i] {
					t.Fatalf("%v: node %d conn[%d] = %d, want %d", layout, id, i, n.Conn[i], c[i])
				}
			}
			checked++
			if checked >= 25 {
				break
			}
		}
		if checked == 0 {
			t.Fatalf("%v: fixture produced no overflowing lists", layout)
		}
	}
}

// TestConnectOverflowCoLocated verifies the tentpole mechanism: a
// connect store keeps every overflow record inside the node heap
// (conn.overflow stays empty), and fetching a long list through a cold
// cache never reads an overflow-file page — the chain lives on the
// owner's own pages.
func TestConnectOverflowCoLocated(t *testing.T) {
	ds := inflateConn(buildDatasetOnly(t, 9, "highland"), overflowLengths...)
	s, err := BuildStore(ds, StorePools{Layout: LayoutConnect})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.OverflowPages(); got != 0 {
		t.Fatalf("connect store has %d overflow pages, want 0", got)
	}
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if _, err := s.ViewpointIndependent(fullRect(), eAtPercentile(ds, 0.5)); err != nil {
		t.Fatal(err)
	}
	bd := s.Breakdown()
	if bd.Overflow != 0 {
		t.Fatalf("connect store read %d overflow-file pages, want 0", bd.Overflow)
	}
	if bd.Data == 0 {
		t.Fatal("cold query read no data pages")
	}
}

// TestConnectLayoutPersistRoundTrip writes a connect store (plain and
// checksummed) to disk and reopens it: the variable-record heap, the
// meta v3 layout plumbing, and the checksum sweep must all round-trip,
// and the reopened store must answer exactly like the in-memory one.
func TestConnectLayoutPersistRoundTrip(t *testing.T) {
	ds := inflateConn(buildDatasetOnly(t, 8, "crater"), overflowLengths...)
	mem, err := BuildStore(ds, StorePools{Layout: LayoutConnect})
	if err != nil {
		t.Fatal(err)
	}
	e := eAtPercentile(ds, 0.4)
	want, err := mem.ViewpointIndependent(fullRect(), e)
	if err != nil {
		t.Fatal(err)
	}
	for _, checksums := range []bool{false, true} {
		dir := t.TempDir()
		s, err := BuildStoreAt(ds, StorePools{Layout: LayoutConnect, Checksums: checksums}, dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenStore(dir, StorePools{})
		if err != nil {
			t.Fatal(err)
		}
		if re.Layout() != LayoutConnect {
			t.Fatalf("reopened layout %v, want connect", re.Layout())
		}
		got, err := re.ViewpointIndependent(fullRect(), e)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "reopened connect store", want, got)
		// Long lists survive the round trip too.
		for i := range overflowLengths {
			id := int64(i+1) * (int64(len(ds.Conn)) / int64(len(overflowLengths)+1))
			n, err := re.FetchByID(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(n.Conn) != len(ds.Conn[id]) {
				t.Fatalf("node %d: %d conn IDs after reopen, want %d", id, len(n.Conn), len(ds.Conn[id]))
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
