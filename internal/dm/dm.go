// Package dm implements Direct Mesh, the paper's contribution: a
// multiresolution triangular mesh representation that supports identifying
// and fetching query results directly from the database with a general-
// purpose spatial index, instead of traversing the MTM tree.
//
// A Direct Mesh node is a Progressive Mesh node (point, LOD interval,
// parent/children/wings, footprint) extended with its connection list: the
// IDs of the points with a similar LOD (overlapping LOD intervals) that it
// can be connected to in some approximation. In (x, y, e) space each node
// is the vertical segment <(x, y, eLow), (x, y, eHigh)>; a 3D R*-tree over
// those segments turns a viewpoint-independent query Q(M, r, e) into a
// single range query with the degenerate box r x [e, e] (Section 5.1), and
// viewpoint-dependent queries into one (single-base, Section 5.2) or
// several (multi-base, Section 5.3) cube queries hugging the query plane.
// Connectivity is reconstructed from connection lists alone — no ancestor
// fetches.
package dm

import (
	"fmt"

	"dmesh/internal/geom"
	"dmesh/internal/pm"
	"dmesh/internal/simplify"
)

// Node is one Direct Mesh node: a PM node plus its connection list.
type Node struct {
	pm.Node
	// Conn lists the IDs of this node's similar-LOD connection points,
	// sorted ascending.
	Conn []int64
}

// Dataset is the in-memory Direct Mesh: the normalized PM tree plus the
// connection lists gathered during simplification.
type Dataset struct {
	Tree *pm.Tree
	Conn [][]int64
}

// FromSequence builds the Direct Mesh dataset from a collapse sequence.
func FromSequence(seq *simplify.Sequence) (*Dataset, error) {
	tree, err := pm.FromSequence(seq)
	if err != nil {
		return nil, fmt.Errorf("dm: %w", err)
	}
	if len(seq.ConnLists) != len(tree.Nodes) {
		return nil, fmt.Errorf("dm: %d connection lists for %d nodes", len(seq.ConnLists), len(tree.Nodes))
	}
	return &Dataset{Tree: tree, Conn: seq.ConnLists}, nil
}

// Node materializes node id with its connection list.
func (d *Dataset) Node(id int64) Node {
	return Node{Node: d.Tree.Nodes[id], Conn: d.Conn[id]}
}

// MaxE returns the dataset's maximum LOD value.
func (d *Dataset) MaxE() float64 { return d.Tree.MaxE }

// UniformCut returns the IDs of the nodes forming the approximation at LOD
// e over the whole terrain: exactly the nodes whose LOD interval contains
// e. This in-memory form is the ground truth for store queries.
func (d *Dataset) UniformCut(e float64) []int64 {
	var out []int64
	for i := range d.Tree.Nodes {
		if d.Tree.Nodes[i].Interval().Contains(e) {
			out = append(out, int64(i))
		}
	}
	return out
}

// Result is the outcome of a Direct Mesh query: the approximation mesh
// plus retrieval statistics. Disk-access counts are read from the store's
// pagers (Store.DiskAccesses).
type Result struct {
	// Vertices maps vertex ID to its 3D position.
	Vertices map[int64]geom.Point3
	// Edges holds each mesh edge once, with Edges[i][0] < Edges[i][1].
	Edges [][2]int64
	// Triangles holds the triangulation (canonicalized vertex triples).
	Triangles []geom.Triangle
	// FetchedRecords is how many node records the query retrieved
	// (including records fetched but filtered out of the approximation).
	FetchedRecords int
	// Strips is the number of query cubes executed (1 for viewpoint-
	// independent and single-base queries).
	Strips int
}

// assembleUniform builds the mesh for a uniform-LOD cut: vertices are the
// live nodes, edges are connection-list pairs whose both ends are live.
// Direct Mesh's core claim is that this needs no data beyond the fetched
// records.
func assembleUniform(live map[int64]*Node) *Result {
	res := &Result{Vertices: make(map[int64]geom.Point3, len(live))}
	adj := make(map[int64][]int64, len(live))
	for id, n := range live {
		res.Vertices[id] = n.Pos
		for _, c := range n.Conn {
			if c <= id {
				continue // count each pair once
			}
			if _, ok := live[c]; ok {
				res.Edges = append(res.Edges, [2]int64{id, c})
				adj[id] = append(adj[id], c)
				adj[c] = append(adj[c], id)
			}
		}
	}
	res.Triangles = trianglesFromAdjacency(adj)
	return res
}

// assembleLifted builds the mesh for an adaptive (viewpoint-dependent)
// cut. live is the cut; fetched is every retrieved record (live's
// ancestors near the plane among them). A connection pair (a, b) lifts to
// the edge (rep(a), rep(b)) where rep walks parent pointers up to the
// first live node; pairs whose chains leave the fetched set are dropped
// (their witnesses lie outside the query cube, the connectivity the paper
// notes cannot be kept without storing all-LOD lists).
func assembleLifted(fetched map[int64]*Node, live map[int64]*Node) *Result {
	res := &Result{Vertices: make(map[int64]geom.Point3, len(live))}
	for id, n := range live {
		res.Vertices[id] = n.Pos
	}
	// rep memoizes the live representative of every fetched node.
	const unresolved = int64(-2)
	repCache := make(map[int64]int64, len(fetched))
	var rep func(id int64) int64
	rep = func(id int64) int64 {
		if r, ok := repCache[id]; ok {
			return r
		}
		repCache[id] = unresolved // cycle guard; overwritten below
		var r int64 = -1
		if _, ok := live[id]; ok {
			r = id
		} else if n, ok := fetched[id]; ok && n.Parent != pm.None {
			r = rep(n.Parent)
		}
		repCache[id] = r
		return r
	}
	adj := make(map[int64][]int64, len(live))
	seen := make(map[[2]int64]bool)
	for id, n := range fetched {
		ra := rep(id)
		if ra < 0 {
			continue
		}
		for _, c := range n.Conn {
			if _, ok := fetched[c]; !ok {
				continue
			}
			rb := rep(c)
			if rb < 0 || rb == ra {
				continue
			}
			k := edgeKey(ra, rb)
			if seen[k] {
				continue
			}
			seen[k] = true
			res.Edges = append(res.Edges, k)
			adj[k[0]] = append(adj[k[0]], k[1])
			adj[k[1]] = append(adj[k[1]], k[0])
		}
	}
	res.Triangles = trianglesFromAdjacency(adj)
	return res
}

func edgeKey(a, b int64) [2]int64 {
	if a > b {
		a, b = b, a
	}
	return [2]int64{a, b}
}

// trianglesFromAdjacency extracts the 3-cliques of the adjacency graph —
// the triangles of the reconstructed approximation.
func trianglesFromAdjacency(adj map[int64][]int64) []geom.Triangle {
	// Sort neighbor lists so cliques can be found by merge-intersection.
	for v := range adj {
		ns := adj[v]
		sortInt64s(ns)
	}
	var tris []geom.Triangle
	for u, ns := range adj {
		for i, v := range ns {
			if v <= u {
				continue
			}
			// w must be adjacent to both u and v, with w > v to count each
			// triangle once.
			vs := adj[v]
			j, k := i+1, 0
			for j < len(ns) && k < len(vs) {
				switch {
				case ns[j] < vs[k]:
					j++
				case ns[j] > vs[k]:
					k++
				default:
					if ns[j] > v {
						tris = append(tris, geom.Triangle{A: u, B: v, C: ns[j]})
					}
					j++
					k++
				}
			}
		}
	}
	return tris
}

func sortInt64s(a []int64) {
	// Insertion sort: neighbor lists are tiny (average degree ~6).
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
