package dm

import (
	"fmt"
	"math"
	"sort"

	"dmesh/internal/costmodel"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
	"dmesh/internal/pm"
	"dmesh/internal/rtree"
	"dmesh/internal/storage/btree"
	"dmesh/internal/storage/heapfile"
	"dmesh/internal/storage/pager"
)

// Store is the disk-resident Direct Mesh: node records in a heap file
// clustered on the spatial index (Section 6: "terrain data is arranged on
// the disk in such a way that their (x, y) clustering is preserved as much
// as possible" — by default records follow the R*-tree's STR leaf order;
// see Layout for alternatives), a 3D R*-tree over the nodes' vertical
// segments in (x, y, e) space, a B+-tree from node ID to record, and an
// overflow file for long connection lists.
//
// Exactly one of heap (fixed records; LayoutSTR/Hilbert/RowMajor) and
// vheap (variable records; LayoutConnect/LayoutPacked) is non-nil, per
// layout. Both live on heapP; the variable layouts keep their overflow
// records in vheap too, co-located with their owners, so their
// conn.overflow file stays empty.
type Store struct {
	heap  *heapfile.File
	vheap *heapfile.VarFile
	over  *heapfile.File
	rt    *rtree.Tree
	idx   *btree.Tree
	heapP *pager.Pager
	overP *pager.Pager
	rtP   *pager.Pager
	idxP  *pager.Pager

	layout Layout
	maxE   float64
	space  geom.Box

	// stripWorkers bounds the per-query fan-out of multi-strip plans
	// (1 = serial, the measurement default). Set before serving.
	stripWorkers int

	// tr, when non-nil, receives phase-attributed spans from every query
	// run on this view. Nil (the default) costs one pointer check per
	// span site and nothing else.
	tr *obs.Trace
}

// SetTrace attaches a phase tracer to this store view: subsequent
// queries emit obs spans whose DA attribution is exact against the
// view's counters. A trace is single-goroutine, like the view itself —
// attach to per-request Sessions when serving concurrently (NewSession
// never inherits the parent store's trace). Pass nil to detach.
func (s *Store) SetTrace(tr *obs.Trace) { s.tr = tr }

// Trace returns the attached phase tracer (nil when tracing is off).
func (s *Store) Trace() *obs.Trace { return s.tr }

// SetStripWorkers sets how many goroutines ExecuteStrips may use to fetch
// the strips of one multi-base plan (values below 2 keep the serial
// execution the figure measurements use). Strips share the store's buffer
// pool either way, so the total disk accesses of a cold query are
// unchanged; only wall-clock time is. Call during setup, not while
// queries are running.
func (s *Store) SetStripWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.stripWorkers = n
}

// Layout selects the physical order of node records in the heap file.
type Layout int

const (
	// LayoutSTR clusters the table on the R*-tree: records are laid out
	// in the index's STR leaf order, so the records of one index leaf
	// share data pages. This is the default and the standard physical
	// design for an index-clustered table.
	LayoutSTR Layout = iota
	// LayoutHilbert orders records by the Hilbert curve over (x, y) only
	// (pure spatial clustering, all LOD levels interleaved). Kept for the
	// clustering ablation.
	LayoutHilbert
	// LayoutRowMajor orders records by node ID (creation order); the
	// un-clustered baseline for the ablation.
	LayoutRowMajor
	// LayoutConnect is the connectivity-clustered layout: variable-length
	// records (whole connection lists inline in the common case, overflow
	// records co-located with their owners otherwise), packed by Hilbert
	// order within LOD bands and refined so connection-list neighbors
	// share pages. It exists to eliminate the overflow_walk disk accesses
	// the fixed layouts pay, and the extra data pages connection-heavy
	// queries touch.
	LayoutConnect
	// LayoutPacked is LayoutConnect's clustering on compressed records:
	// zigzag-varint connection deltas, delta-coded topology references, a
	// field-presence bitmap, and a lossless dyadic fast path for floats
	// (see packed.go). Records shrink to roughly a third, so each data
	// page holds 2-4x more nodes and every query kind reads fewer pages;
	// decoding is bit-exact, so answers are unchanged.
	LayoutPacked
)

// variableRecords reports whether the layout stores variable-length
// records in the slotted-page heap (heapfile.VarFile) rather than the
// fixed-stride heap.
func (l Layout) variableRecords() bool {
	return l == LayoutConnect || l == LayoutPacked
}

// String returns the layout's flag spelling (see ParseLayout).
func (l Layout) String() string {
	switch l {
	case LayoutSTR:
		return "str"
	case LayoutHilbert:
		return "hilbert"
	case LayoutRowMajor:
		return "rowmajor"
	case LayoutConnect:
		return "connect"
	case LayoutPacked:
		return "packed"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// ParseLayout parses a layout name as spelled by String — the form the
// command-line tools accept.
func ParseLayout(name string) (Layout, error) {
	for _, l := range []Layout{LayoutSTR, LayoutHilbert, LayoutRowMajor, LayoutConnect, LayoutPacked} {
		if name == l.String() {
			return l, nil
		}
	}
	return 0, fmt.Errorf("dm: unknown layout %q (want str, hilbert, rowmajor, connect, or packed)", name)
}

// StorePools sizes the buffer pools (in pages) of the store's four files
// and selects the record layout. The zero value selects defaults suitable
// for tests and examples (STR layout, one buffer-pool shard).
//
// Shards splits each buffer pool into that many independently locked
// shards. The default of one shard reproduces a monolithic pool exactly —
// identical evictions, identical disk-access counts — which the figure
// measurements depend on; servers answering many queries concurrently
// should set it to roughly the core count.
// Checksums protects every page of the four files with a CRC-32C
// verified on each backend read and re-stamped on each write
// (pager.Checksummed). Verification happens inside the one counted
// backend read, so every disk-access figure is unchanged; corruption
// and torn writes surface as errors wrapping pager.ErrChecksum instead
// of silently wrong answers. The choice is recorded in meta.json and
// re-applied by OpenStore.
//
// WrapBackend, when set, wraps each file's backend before the checksum
// layer (raw → WrapBackend → checksums → pager): the hook fault-
// injection tests and the chaos experiment use to interpose
// faultfs-style wrappers underneath the integrity layer.
type StorePools struct {
	Data, Overflow, Index, IDIndex int
	Layout                         Layout
	Shards                         int
	Checksums                      bool
	WrapBackend                    func(pager.Backend) pager.Backend
}

func (sp *StorePools) defaults() {
	if sp.Data <= 0 {
		sp.Data = 4096
	}
	if sp.Overflow <= 0 {
		sp.Overflow = 512
	}
	if sp.Index <= 0 {
		sp.Index = 2048
	}
	if sp.IDIndex <= 0 {
		sp.IDIndex = 1024
	}
	if sp.Shards <= 0 {
		sp.Shards = 1
	}
}

// newPager builds one of the store's pagers per the pool configuration.
func (sp *StorePools) newPager(backend pager.Backend, capPages int) *pager.Pager {
	return pager.NewSharded(backend, capPages, sp.Shards, pager.LRU)
}

// wrap layers the configured backend wrappers over one raw backend: the
// WrapBackend hook innermost (so injected faults model the disk), then
// the checksum layer on top.
func (sp *StorePools) wrap(b pager.Backend) (pager.Backend, error) {
	if sp.WrapBackend != nil {
		b = sp.WrapBackend(b)
	}
	if sp.Checksums {
		return pager.Checksummed(b)
	}
	return b, nil
}

// BuildStore lays ds out on fresh in-memory pagers. Use BuildStoreAt for
// a file-backed store that can be reopened.
func BuildStore(ds *Dataset, pools StorePools) (*Store, error) {
	return buildStore(ds, pools, [4]pager.Backend{
		pager.NewMemBackend(), pager.NewMemBackend(),
		pager.NewMemBackend(), pager.NewMemBackend(),
	})
}

// BuildStoreOnBackends lays ds out on caller-supplied backends (heap,
// overflow, r*-tree, id index), applying the pool configuration's
// wrappers (WrapBackend hook, checksums) on top of each. Fault-injection
// tests and the chaos experiment use it to interpose faultfs wrappers
// below the store.
func BuildStoreOnBackends(ds *Dataset, pools StorePools, backends [4]pager.Backend) (*Store, error) {
	return buildStore(ds, pools, backends)
}

// buildStore lays ds out on the given backends (heap, overflow, r*-tree,
// id index).
func buildStore(ds *Dataset, pools StorePools, backends [4]pager.Backend) (*Store, error) {
	nodes := make([]Node, len(ds.Tree.Nodes))
	for i := range nodes {
		nodes[i] = ds.Node(int64(i))
	}
	return buildNodes(nodes, ds.Tree.MaxE, pools, backends)
}

// buildNodes lays the materialized nodes (indexed by ID, dense 0..N-1)
// out on the given backends. buildStore enters here from a Dataset;
// Repack enters from an existing store's records.
func buildNodes(nodes []Node, maxE float64, pools StorePools, backends [4]pager.Backend) (*Store, error) {
	pools.defaults()
	for i := range backends {
		b, err := pools.wrap(backends[i])
		if err != nil {
			return nil, fmt.Errorf("dm: wrap backend: %w", err)
		}
		backends[i] = b
	}
	s := &Store{
		heapP:  pools.newPager(backends[0], pools.Data),
		overP:  pools.newPager(backends[1], pools.Overflow),
		rtP:    pools.newPager(backends[2], pools.Index),
		idxP:   pools.newPager(backends[3], pools.IDIndex),
		layout: pools.Layout,
		maxE:   maxE,
	}
	var err error
	if pools.Layout.variableRecords() {
		if s.vheap, err = heapfile.CreateVar(s.heapP); err != nil {
			return nil, fmt.Errorf("dm: create heap: %w", err)
		}
	} else {
		if s.heap, err = heapfile.Create(s.heapP, RecordSize); err != nil {
			return nil, fmt.Errorf("dm: create heap: %w", err)
		}
	}
	// The overflow file exists for every layout so the store directory has
	// one shape; the variable layouts simply never write to it.
	if s.over, err = heapfile.Create(s.overP, OverflowRecordSize); err != nil {
		return nil, fmt.Errorf("dm: create overflow: %w", err)
	}
	if s.idx, err = btree.Create(s.idxP); err != nil {
		return nil, fmt.Errorf("dm: create id index: %w", err)
	}

	// Choose the physical record order ("terrain data is arranged on the
	// disk in such a way that their (x, y) clustering is preserved as much
	// as possible", Section 6 — with the index available, clustering the
	// table on the index preserves it best).
	order := make([]int64, len(nodes))
	for i := range order {
		order[i] = int64(i)
	}
	switch pools.Layout {
	case LayoutSTR:
		segs := make([]rtree.Item, len(order))
		for i, id := range order {
			segs[i] = rtree.Item{Box: segmentOf(&nodes[id].Node, maxE), Ref: id}
		}
		for i, it := range rtree.STRLeafOrder(segs) {
			order[i] = it.Ref
		}
	case LayoutHilbert:
		sort.SliceStable(order, func(a, b int) bool {
			ka := geom.HilbertKey(nodes[order[a]].Pos.XY())
			kb := geom.HilbertKey(nodes[order[b]].Pos.XY())
			if ka != kb {
				return ka < kb
			}
			return order[a] < order[b]
		})
	case LayoutRowMajor:
		// IDs are already in creation order.
	case LayoutConnect:
		order = connectOrder(nodes, connectSizer)
	case LayoutPacked:
		order = connectOrder(nodes, packedSizer)
	default:
		return nil, fmt.Errorf("dm: unknown layout %d", pools.Layout)
	}

	// Capacity covers the largest variable record, so the connect path
	// never reallocates either buffer while building.
	buf := make([]byte, RecordSize, heapfile.MaxVarRecord)
	obuf := make([]byte, OverflowRecordSize, heapfile.MaxVarRecord)
	items := make([]rtree.Item, 0, len(order))
	space := geom.Box{MinX: math.Inf(1), MinY: math.Inf(1), MinE: 0,
		MaxX: math.Inf(-1), MaxY: math.Inf(-1), MaxE: s.maxE}
	for _, id := range order {
		n := &nodes[id]
		var rid heapfile.RID
		var err error
		switch pools.Layout {
		case LayoutConnect:
			rid, err = s.appendConnect(n, buf, obuf)
		case LayoutPacked:
			rid, err = s.appendPacked(n, buf, obuf)
		default:
			rid, err = s.appendFixed(n, buf, obuf)
		}
		if err != nil {
			return nil, err
		}
		if err := s.idx.Put(id, int64(rid)); err != nil {
			return nil, fmt.Errorf("dm: id index: %w", err)
		}
		items = append(items, rtree.Item{
			Box: segmentOf(&n.Node, s.maxE),
			Ref: int64(rid),
		})
		space.MinX = math.Min(space.MinX, n.Pos.X)
		space.MinY = math.Min(space.MinY, n.Pos.Y)
		space.MaxX = math.Max(space.MaxX, n.Pos.X)
		space.MaxY = math.Max(space.MaxY, n.Pos.Y)
	}
	s.space = space
	if s.rt, err = rtree.BulkLoad(s.rtP, items); err != nil {
		return nil, fmt.Errorf("dm: bulk load r*-tree: %w", err)
	}
	return s, nil
}

// appendFixed writes one fixed-size record, spilling conn IDs beyond the
// inline capacity into an overflow chain in the separate overflow file,
// written tail-first so each record knows its successor.
func (s *Store) appendFixed(n *Node, buf, obuf []byte) (heapfile.RID, error) {
	overflowRef := noOverflow
	if len(n.Conn) > ConnInline {
		rest := n.Conn[ConnInline:]
		for start := ((len(rest) - 1) / OverflowFanout) * OverflowFanout; start >= 0; start -= OverflowFanout {
			end := start + OverflowFanout
			if end > len(rest) {
				end = len(rest)
			}
			encodeOverflow(rest[start:end], overflowRef, obuf)
			rid, err := s.over.Append(obuf)
			if err != nil {
				return 0, fmt.Errorf("dm: overflow append: %w", err)
			}
			overflowRef = int64(rid)
		}
	}
	encodeRecord(n, overflowRef, buf[:RecordSize])
	rid, err := s.heap.Append(buf[:RecordSize])
	if err != nil {
		return 0, fmt.Errorf("dm: heap append: %w", err)
	}
	return rid, nil
}

// appendConnect writes one variable-length record: the whole connection
// list inline when it fits a page (the common case), otherwise the rest
// spills to variable overflow records appended — tail-first — into the
// SAME file immediately before the owner, so the chain shares the
// owner's page (or the one just before it) and walking it costs no extra
// disk accesses.
func (s *Store) appendConnect(n *Node, buf, obuf []byte) (heapfile.RID, error) {
	overflowRef := noOverflow
	inline := connectInline(len(n.Conn))
	if rest := n.Conn[inline:]; len(rest) > 0 {
		for start := ((len(rest) - 1) / connectOverflowFanout) * connectOverflowFanout; start >= 0; start -= connectOverflowFanout {
			end := start + connectOverflowFanout
			if end > len(rest) {
				end = len(rest)
			}
			obuf = encodeConnectOverflow(rest[start:end], overflowRef, obuf)
			rid, err := s.vheap.Append(obuf)
			if err != nil {
				return 0, fmt.Errorf("dm: overflow append: %w", err)
			}
			overflowRef = int64(rid)
		}
	}
	buf = encodeConnectRecord(n, overflowRef, buf)
	rid, err := s.vheap.Append(buf)
	if err != nil {
		return 0, fmt.Errorf("dm: heap append: %w", err)
	}
	return rid, nil
}

// appendPacked writes one compressed variable-length record: the whole
// connection list inline as zigzag-varint deltas when the encoding fits
// a page (virtually always — packed lists cost 1-2 bytes per ID), else
// the longest fitting prefix with the rest spilling to the same raw
// variable overflow records the connect layout uses, co-allocated
// tail-first immediately before the owner.
func (s *Store) appendPacked(n *Node, buf, obuf []byte) (heapfile.RID, error) {
	overflowRef := noOverflow
	inline := packedSplit(n)
	if rest := n.Conn[inline:]; len(rest) > 0 {
		for start := ((len(rest) - 1) / connectOverflowFanout) * connectOverflowFanout; start >= 0; start -= connectOverflowFanout {
			end := start + connectOverflowFanout
			if end > len(rest) {
				end = len(rest)
			}
			obuf = encodeConnectOverflow(rest[start:end], overflowRef, obuf)
			rid, err := s.vheap.Append(obuf)
			if err != nil {
				return 0, fmt.Errorf("dm: overflow append: %w", err)
			}
			overflowRef = int64(rid)
		}
	}
	buf = encodePackedRecord(n, overflowRef, inline, buf)
	rid, err := s.vheap.Append(buf)
	if err != nil {
		return 0, fmt.Errorf("dm: heap append: %w", err)
	}
	return rid, nil
}

// segmentOf returns the node's vertical segment in (x, y, e) space; the
// root's infinite top is clamped to the dataset maximum.
func segmentOf(n *pm.Node, maxE float64) geom.Box {
	hi := n.EHigh
	if math.IsInf(hi, 1) {
		hi = maxE
	}
	return geom.VerticalSegment(n.Pos.X, n.Pos.Y, n.ELow, hi)
}

// MaxE returns the dataset's maximum LOD value.
func (s *Store) MaxE() float64 { return s.maxE }

// Layout returns the store's physical record layout.
func (s *Store) Layout() Layout { return s.layout }

// NumNodes returns how many node records the store holds.
func (s *Store) NumNodes() int64 { return s.idx.Len() }

// DataPages returns how many data pages the node heap occupies —
// the footprint the layouts trade against disk accesses.
func (s *Store) DataPages() int64 {
	if s.layout.variableRecords() {
		return s.vheap.DataPages()
	}
	perPage := int64(s.heap.PerPage())
	return (s.heap.NumRecords() + perPage - 1) / perPage
}

// OverflowPages returns how many pages the separate overflow file uses
// (always 0 for the variable layouts, whose chains live among the node
// records).
func (s *Store) OverflowPages() int64 {
	perPage := int64((pager.PageSize - 2) / OverflowRecordSize)
	return (s.over.NumRecords() + perPage - 1) / perPage
}

// DataSpace returns the (x, y, e) bounding box of the stored segments,
// the normalization space for the cost model.
func (s *Store) DataSpace() geom.Box { return s.space }

// RTree exposes the spatial index (for the cost model's node statistics).
func (s *Store) RTree() *rtree.Tree { return s.rt }

// CostModel builds the multi-base optimizer's cost model for this store:
// formula (1) over the R*-tree's nodes, with leaf terms scaled by the
// clustered data pages each visited leaf implies. Building it scans the
// index once (a once-off cost, not charged to queries).
func (s *Store) CostModel() (*costmodel.Model, error) {
	m, err := costmodel.FromRTree(s.rt, s.space)
	if err != nil {
		return nil, err
	}
	recsPerPage := float64((pager.PageSize - 2) / RecordSize)
	if s.layout.variableRecords() {
		// Variable records have no static per-page count; use the realized
		// density (node records over slotted data pages, overflow included).
		if dp := s.vheap.DataPages(); dp > 0 {
			recsPerPage = float64(s.idx.Len()) / float64(dp)
		} else {
			// No data pages to measure (an empty store): fall back to a
			// layout-aware static estimate rather than the fixed record
			// stride, which would understate how densely variable — and
			// especially packed — records fill a page.
			recsPerPage = heapfile.VarRecordsPerPage(estVarRecordBytes(s.layout))
		}
	}
	m.SetDataFactor(m.AvgLeafEntries() / recsPerPage)
	m.SetSharedPool(true) // strips of one query share this store's pool
	return m, nil
}

// estVarRecordBytes is the static average record length the cost model
// assumes for a variable layout when no realized pages exist yet. The
// connect estimate is the exact record length at the paper's average
// similar-LOD list of 12 IDs; the packed estimate reflects the measured
// average of the compressed encoding on both benchmark datasets (~60 B:
// varint ID + bitmap + delta-coded refs and list, one or two raw
// floats).
func estVarRecordBytes(l Layout) float64 {
	if l == LayoutPacked {
		return 60
	}
	return float64(connectRecordLen(12))
}

// DropCaches flushes and empties all buffer pools (the paper's cold-cache
// methodology).
func (s *Store) DropCaches() error {
	for _, p := range s.pagers() {
		if err := p.DropCache(); err != nil {
			return err
		}
	}
	return nil
}

// ResetStats zeroes all disk-access counters.
func (s *Store) ResetStats() {
	for _, p := range s.pagers() {
		p.ResetStats()
	}
}

// DiskAccesses returns the pages read since the last ResetStats — the
// paper's cost metric.
func (s *Store) DiskAccesses() uint64 {
	var total uint64
	for _, p := range s.pagers() {
		total += p.Stats().Reads
	}
	return total
}

func (s *Store) pagers() []*pager.Pager {
	return []*pager.Pager{s.heapP, s.overP, s.rtP, s.idxP}
}

// AccessBreakdown itemizes the disk accesses since the last ResetStats by
// file: where a query's I/O actually went. LayoutConnect stores keep
// their (rare) overflow chains inside the node heap, so their Overflow
// count is always 0 and chain reads — virtually all buffer-pool hits —
// fold into Data.
type AccessBreakdown struct {
	Data     uint64 // heap-file record pages
	Overflow uint64 // connection-list overflow pages
	Index    uint64 // R*-tree node pages
	IDIndex  uint64 // B+-tree pages (by-ID fetches)
}

// Breakdown returns the per-file disk-access counts.
func (s *Store) Breakdown() AccessBreakdown {
	return AccessBreakdown{
		Data:     s.heapP.Stats().Reads,
		Overflow: s.overP.Stats().Reads,
		Index:    s.rtP.Stats().Reads,
		IDIndex:  s.idxP.Stats().Reads,
	}
}

// recBufs carries the record and overflow read buffers one caller reuses
// across fetches, plus the arena that batches the decoded nodes' Conn
// allocations. Fixed layouts use the buffers at their fixed sizes; the
// variable layouts' reads may grow them in place.
type recBufs struct {
	rec, over []byte
	arena     connArena
}

func newRecBufs() recBufs {
	return recBufs{
		rec:  make([]byte, RecordSize),
		over: make([]byte, OverflowRecordSize),
	}
}

// fetchRecord reads and fully decodes the record at rid, following the
// overflow chain when the connection list spills. tr may be nil; the
// parallel strip path passes nil explicitly because its workers share
// the store view but a trace is single-goroutine.
func (s *Store) fetchRecord(rid heapfile.RID, bufs *recBufs, tr *obs.Trace) (Node, error) {
	if s.layout.variableRecords() {
		return s.fetchVarRecord(rid, bufs, tr)
	}
	buf := bufs.rec[:RecordSize]
	if err := s.heap.Read(rid, buf); err != nil {
		return Node{}, err
	}
	n, total, overflowRef := decodeRecordHeader(buf, &bufs.arena)
	if overflowRef != noOverflow {
		tr.Begin(obs.PhaseOverflow)
	}
	// A well-formed chain has at most one record per overflow record in
	// the file; anything longer is a corrupted next-pointer cycle.
	maxSteps := s.over.NumRecords() + 1
	for steps := int64(0); overflowRef != noOverflow; steps++ {
		if steps >= maxSteps {
			tr.End()
			return Node{}, fmt.Errorf("dm: node %d overflow chain longer than %d records (corrupt cycle)", n.ID, maxSteps)
		}
		obuf := bufs.over[:OverflowRecordSize]
		if err := s.over.Read(heapfile.RID(overflowRef), obuf); err != nil {
			tr.End()
			return Node{}, fmt.Errorf("dm: overflow chain: %w", err)
		}
		var ids []int64
		ids, overflowRef = decodeOverflow(obuf)
		n.Conn = append(n.Conn, ids...)
		if overflowRef == noOverflow {
			tr.End()
		}
	}
	if len(n.Conn) != total {
		return Node{}, fmt.Errorf("dm: node %d connection list has %d of %d IDs", n.ID, len(n.Conn), total)
	}
	return n, nil
}

// fetchVarRecord is fetchRecord for the variable layouts (connect and
// packed): one variable record holds the whole list in the common case;
// spilled chains live on the owner's own (or immediately preceding)
// pages, so the overflow span below measures page reads the buffer pool
// almost always absorbs.
func (s *Store) fetchVarRecord(rid heapfile.RID, bufs *recBufs, tr *obs.Trace) (Node, error) {
	rec, err := s.vheap.Read(rid, bufs.rec)
	if err != nil {
		return Node{}, err
	}
	bufs.rec = rec
	var n Node
	var total int
	var overflowRef int64
	if s.layout == LayoutPacked {
		n, total, overflowRef, err = decodePackedRecord(rec, &bufs.arena)
		if err != nil {
			return Node{}, err
		}
	} else {
		if err := checkConnectRecord(rec); err != nil {
			return Node{}, err
		}
		n, total, overflowRef = decodeRecordHeader(rec, &bufs.arena)
	}
	if overflowRef != noOverflow {
		tr.Begin(obs.PhaseOverflow)
	}
	maxSteps := s.vheap.NumRecords() + 1
	for steps := int64(0); overflowRef != noOverflow; steps++ {
		if steps >= maxSteps {
			tr.End()
			return Node{}, fmt.Errorf("dm: node %d overflow chain longer than %d records (corrupt cycle)", n.ID, maxSteps)
		}
		ob, err := s.vheap.Read(heapfile.RID(overflowRef), bufs.over)
		if err != nil {
			tr.End()
			return Node{}, fmt.Errorf("dm: overflow chain: %w", err)
		}
		bufs.over = ob
		if len(ob) < 10 {
			tr.End()
			return Node{}, fmt.Errorf("dm: node %d: malformed %d-byte overflow record", n.ID, len(ob))
		}
		var ids []int64
		ids, overflowRef = decodeOverflow(ob)
		n.Conn = append(n.Conn, ids...)
		if overflowRef == noOverflow {
			tr.End()
		}
	}
	if len(n.Conn) != total {
		return Node{}, fmt.Errorf("dm: node %d connection list has %d of %d IDs", n.ID, len(n.Conn), total)
	}
	return n, nil
}

// FetchByID reads one node through the B+-tree (an index probe plus data
// pages), for callers that need point lookups outside range queries.
func (s *Store) FetchByID(id int64) (Node, error) {
	s.tr.Begin(obs.PhaseIDIndex)
	rid, err := s.idx.Get(id)
	s.tr.End()
	if err != nil {
		return Node{}, fmt.Errorf("dm: node %d: %w", id, err)
	}
	bufs := newRecBufs()
	s.tr.Begin(obs.PhaseFetch)
	n, err := s.fetchRecord(heapfile.RID(rid), &bufs, s.tr)
	s.tr.End()
	return n, err
}
