package dm

import (
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/obs"
)

// TestTraceInvariantQueries runs every query kind on both datasets with
// a trace attached and checks the DA-attribution invariant: the
// per-phase self costs sum exactly to the independently counted session
// total, and tracing changes neither the mesh nor the DA.
func TestTraceInvariantQueries(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds, _ := buildDataset(t, 9, name)
		s := newTestStore(t, ds)
		model, err := s.CostModel()
		if err != nil {
			t.Fatal(err)
		}
		roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.7, MaxY: 0.7}
		e := eAtPercentile(ds, 0.9)
		qp := geom.QueryPlane{R: roi, EMin: eAtPercentile(ds, 0.5), EMax: eAtPercentile(ds, 0.95), Axis: 1}

		kinds := []struct {
			name string
			run  func(*Store) (*Result, error)
		}{
			{"uniform", func(v *Store) (*Result, error) { return v.ViewpointIndependent(roi, e) }},
			{"single-base", func(v *Store) (*Result, error) { return v.SingleBase(qp) }},
			{"multi-base", func(v *Store) (*Result, error) { return v.MultiBase(qp, model, 8) }},
			{"radial", func(v *Store) (*Result, error) {
				return v.Radial(roi, geom.Point2{X: 0.45, Y: 0.45}, s.MaxE(), 4)
			}},
			{"fetch-by-id", func(v *Store) (*Result, error) {
				_, err := v.FetchByID(0)
				return &Result{}, err
			}},
			{"materialize", func(v *Store) (*Result, error) {
				_, err := v.MaterializeTile(roi, e)
				return &Result{}, err
			}},
		}
		for _, k := range kinds {
			// Untraced cold run: the reference mesh and DA.
			if err := s.DropCaches(); err != nil {
				t.Fatal(err)
			}
			s.ResetStats()
			s.SetTrace(nil)
			want, err := k.run(s)
			if err != nil {
				t.Fatalf("%s/%s untraced: %v", name, k.name, err)
			}
			wantDA := s.DiskAccesses()

			// Traced cold run: identical result, identical DA, exact
			// phase attribution.
			if err := s.DropCaches(); err != nil {
				t.Fatal(err)
			}
			s.ResetStats()
			tr := obs.NewTrace(s.DiskAccesses)
			s.SetTrace(tr)
			got, err := k.run(s)
			if err != nil {
				t.Fatalf("%s/%s traced: %v", name, k.name, err)
			}
			gotDA := s.DiskAccesses()
			s.SetTrace(nil)
			if gotDA != wantDA {
				t.Errorf("%s/%s: traced run cost %d DA, untraced %d", name, k.name, gotDA, wantDA)
			}
			if err := tr.CheckTotal(gotDA); err != nil {
				t.Errorf("%s/%s: %v", name, k.name, err)
			}
			if want.Vertices != nil {
				requireSameMesh(t, name+"/"+k.name, got, want)
			}
			if wantDA > 0 {
				bd := tr.Breakdown()
				if bd[obs.PhaseTriangulate] != 0 || bd[obs.PhasePlan] != 0 {
					t.Errorf("%s/%s: CPU-only phases charged DA: triangulate=%d plan=%d",
						name, k.name, bd[obs.PhaseTriangulate], bd[obs.PhasePlan])
				}
			}
		}
	}
}

// TestTraceInvariantParallelStrips checks the parallel strip path: the
// workers run untraced, the fan-out lands in one fetch span, and the
// total still attributes exactly.
func TestTraceInvariantParallelStrips(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	model, err := s.CostModel()
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{R: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9},
		EMin: eAtPercentile(ds, 0.5), EMax: eAtPercentile(ds, 0.95), Axis: 1}
	s.SetStripWorkers(4)
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	tr := obs.NewTrace(s.DiskAccesses)
	s.SetTrace(tr)
	if _, err := s.MultiBase(qp, model, 8); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckTotal(s.DiskAccesses()); err != nil {
		t.Error(err)
	}
}

// TestTraceInvariantCoherent drives the determinism test's camera walk
// with a trace enabled and checks, every frame, that the trace accounts
// for exactly FrameStats.DA — and that the traced walk's FrameStats are
// identical to an untraced walk's (tracing cannot perturb the paper's
// numbers).
func TestTraceInvariantCoherent(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds, _ := buildDataset(t, 9, name)
		emin, emax := eAtPercentile(ds, 0.5), eAtPercentile(ds, 0.95)

		run := func(traced bool) []FrameStats {
			s := newTestStore(t, ds)
			model, err := s.CostModel()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.DropCaches(); err != nil {
				t.Fatal(err)
			}
			s.ResetStats()
			cs := s.NewCoherentSession(model)
			var tr *obs.Trace
			if traced {
				tr = cs.EnableTrace()
			}
			walk := newCameraWalk(77, 0.5, 0.4)
			var out []FrameStats
			for i := 0; i < 24; i++ {
				roi := walk.next(i == 8 || i == 16)
				qp := geom.QueryPlane{R: roi, EMin: emin, EMax: emax, Axis: 1}
				var st FrameStats
				if i%2 == 0 {
					_, st, err = cs.Frame(qp)
				} else {
					_, st, err = cs.FrameMultiBase(qp, 8)
				}
				if err != nil {
					t.Fatalf("%s frame %d: %v", name, i, err)
				}
				if traced {
					if err := tr.CheckTotal(st.DA); err != nil {
						t.Errorf("%s frame %d: %v", name, i, err)
					}
				}
				out = append(out, st)
			}
			return out
		}
		plain, traced := run(false), run(true)
		for i := range plain {
			if plain[i] != traced[i] {
				t.Errorf("%s frame %d stats differ traced vs untraced:\n  plain  %+v\n  traced %+v",
					name, i, plain[i], traced[i])
			}
		}
	}
}

// TestSessionTraceIsolation checks that sessions never inherit a parent
// store's trace (a trace is single-goroutine) and that a session trace
// attributes against the session's own counters.
func TestSessionTraceIsolation(t *testing.T) {
	ds, _ := buildDataset(t, 8, "highland")
	s := newTestStore(t, ds)
	storeTr := obs.NewTrace(s.DiskAccesses)
	s.SetTrace(storeTr)
	sess := s.NewSession()
	if sess.Trace() != nil {
		t.Fatal("session inherited the store's trace")
	}
	tr := sess.NewTrace()
	roi := geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.6, MaxY: 0.6}
	if _, err := sess.ViewpointIndependent(roi, eAtPercentile(ds, 0.9)); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckTotal(sess.DiskAccesses()); err != nil {
		t.Error(err)
	}
	if n := len(storeTr.Spans()); n != 0 {
		t.Errorf("session query leaked %d spans into the store trace", n)
	}
}

// BenchmarkTraceOverhead measures Store.ViewpointIndependent warm, with
// no collector installed (the production default — the nil-trace fast
// path) and with a live trace, reporting allocations for both.
func BenchmarkTraceOverhead(b *testing.B) {
	ds, _ := buildDataset(b, 9, "highland")
	s := newTestStore(b, ds)
	roi := geom.Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.65, MaxY: 0.65}
	e := eAtPercentile(ds, 0.9)

	b.Run("no-collector", func(b *testing.B) {
		s.SetTrace(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.ViewpointIndependent(roi, e); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		tr := obs.NewTrace(s.DiskAccesses)
		s.SetTrace(tr)
		defer s.SetTrace(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Reset()
			if _, err := s.ViewpointIndependent(roi, e); err != nil {
				b.Fatal(err)
			}
		}
	})
}
