package dm

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/storage/pager"
)

// The checksum layer must not change the paper's metric: the same cold
// queries against the same dataset cost the same disk accesses with and
// without checksums underneath.
func TestChecksummedStoreDAIdentical(t *testing.T) {
	ds, _ := buildDataset(t, 8, "highland")
	plain := newTestStore(t, ds)
	sums, err := BuildStoreOnBackends(ds, StorePools{Checksums: true}, [4]pager.Backend{
		pager.NewMemBackend(), pager.NewMemBackend(),
		pager.NewMemBackend(), pager.NewMemBackend(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rois := []geom.Rect{
		fullRect(),
		{MinX: 0.1, MinY: 0.1, MaxX: 0.6, MaxY: 0.6},
		{MinX: 0.4, MinY: 0.2, MaxX: 0.9, MaxY: 0.5},
	}
	for _, p := range []float64{0.3, 0.6, 0.9} {
		e := eAtPercentile(ds, p)
		for _, roi := range rois {
			for _, s := range []*Store{plain, sums} {
				if err := s.DropCaches(); err != nil {
					t.Fatal(err)
				}
				s.ResetStats()
			}
			mp, err := plain.ViewpointIndependent(roi, e)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := sums.ViewpointIndependent(roi, e)
			if err != nil {
				t.Fatal(err)
			}
			if len(mp.Vertices) != len(ms.Vertices) || len(mp.Edges) != len(ms.Edges) {
				t.Fatalf("roi %+v e %g: meshes differ", roi, e)
			}
			if da, ds2 := plain.DiskAccesses(), sums.DiskAccesses(); da != ds2 {
				t.Fatalf("roi %+v e %g: plain %d DA, checksummed %d DA", roi, e, da, ds2)
			}
		}
	}
}

// A checksummed store round-trips through meta.json: reopen re-applies
// the wrapper, verifies the whole store at open, and detects corruption
// injected into the closed files.
func TestChecksummedStoreReopenAndVerify(t *testing.T) {
	ds, _ := buildDataset(t, 8, "crater")
	dir := filepath.Join(t.TempDir(), "store")
	s, err := BuildStoreAt(ds, StorePools{Checksums: true}, dir)
	if err != nil {
		t.Fatal(err)
	}
	e := eAtPercentile(ds, 0.5)
	roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	want, err := s.ViewpointIndependent(roi, e)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: VerifyAll passes, queries match. The caller's pools
	// need not repeat Checksums — meta.json carries it.
	s2, err := OpenStore(dir, StorePools{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.ViewpointIndependent(roi, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vertices) != len(want.Vertices) || len(got.Edges) != len(want.Edges) {
		t.Fatal("checksummed store differs after reopen")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot one byte of the first data page of the heap file (physical page
	// 1; page 0 is its checksum page). The next open must refuse to serve.
	path := filepath.Join(dir, heapFileName)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0}
	if _, err := f.ReadAt(buf, pager.PageSize+100); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x01
	if _, err := f.WriteAt(buf, pager.PageSize+100); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenStore(dir, StorePools{}); !errors.Is(err, pager.ErrChecksum) {
		t.Fatalf("OpenStore on rotted store = %v, want ErrChecksum", err)
	}
}

// Version-1 stores (written before the checksum layer existed) must stay
// readable.
func TestOpenStoreAcceptsVersion1Meta(t *testing.T) {
	ds, _ := buildDataset(t, 5, "highland")
	dir := filepath.Join(t.TempDir(), "store")
	s, err := BuildStoreAt(ds, StorePools{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Rewrite meta.json as a version-1 file (no checksums field).
	path := filepath.Join(dir, metaFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var meta map[string]any
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	meta["version"] = 1
	delete(meta, "checksums")
	raw, err = json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StorePools{})
	if err != nil {
		t.Fatalf("OpenStore on version-1 meta: %v", err)
	}
	defer s2.Close()
	if _, err := s2.FetchByID(0); err != nil {
		t.Fatal(err)
	}

	// Future versions are rejected.
	meta["version"] = 99
	raw, _ = json.Marshal(meta)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StorePools{}); err == nil {
		t.Fatal("OpenStore accepted a future meta version")
	}
}
