package dm

import (
	"fmt"
	"math"

	"dmesh/internal/geom"
	"dmesh/internal/obs"
)

// Radial answers the paper's general viewpoint-dependent query from
// Section 2: "the required LOD for a point in a viewpoint-dependent query
// can be estimated using f(m.e, d) <= E for node m whose distance to the
// viewer is d". With the rule-of-thumb f(e, d) = e/d, a point needs
// e <= E*d: full detail next to the viewer, linear coarsening with
// distance in every direction — the radial generalization of the straight
// query planes the evaluation uses.
//
// The paper observes that "conceptually, a viewpoint-dependent query can
// be considered as a number of viewpoint-independent queries, each with a
// sub-region and a uniform LOD"; Radial implements exactly that: the ROI
// is split into tiles x tiles sub-regions, each fetched with one cube
// spanning the radial profile's range over the tile, and the combined
// records assemble the mesh the same way multi-base queries do.
func (s *Store) Radial(roi geom.Rect, viewer geom.Point2, scale float64, tiles int) (*Result, error) {
	if !roi.Valid() || roi.Area() == 0 {
		return nil, fmt.Errorf("dm: radial query needs a non-degenerate ROI, got %v", roi)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("dm: radial LOD scale must be positive, got %g", scale)
	}
	if tiles < 1 {
		tiles = 8
	}

	eAt := func(x, y float64) float64 {
		return scale * viewer.Dist(geom.Point2{X: x, Y: y})
	}

	s.tr.Begin(obs.PhaseQuery)
	defer s.tr.End()
	f := s.newFetcher()
	total := 0
	strips := 0
	tw := roi.Width() / float64(tiles)
	th := roi.Height() / float64(tiles)
	for ty := 0; ty < tiles; ty++ {
		for tx := 0; tx < tiles; tx++ {
			tile := geom.Rect{
				MinX: roi.MinX + float64(tx)*tw,
				MinY: roi.MinY + float64(ty)*th,
				MaxX: roi.MinX + float64(tx+1)*tw,
				MaxY: roi.MinY + float64(ty+1)*th,
			}
			lo, hi := radialRange(tile, viewer, scale)
			if lo > s.maxE {
				lo = s.maxE
			}
			if hi > s.maxE {
				hi = s.maxE
			}
			nf, err := f.fetchBox(geom.BoxFromRect(tile, lo, hi))
			if err != nil {
				return nil, err
			}
			total += nf
			strips++
		}
	}

	fetched := f.fetched()
	s.tr.Begin(obs.PhaseTriangulate)
	live := make(map[int64]*Node, len(fetched))
	for id, n := range fetched {
		if n.Interval().Contains(eAt(n.Pos.X, n.Pos.Y)) {
			live[id] = n
		}
	}
	res := assembleLifted(fetched, live)
	s.tr.End()
	res.FetchedRecords = total
	res.Strips = strips
	return res, nil
}

// radialRange returns the min and max required LOD over a tile: the
// distances from the viewer to the tile's closest and farthest points,
// scaled.
func radialRange(tile geom.Rect, viewer geom.Point2, scale float64) (lo, hi float64) {
	// Closest point of the rect to the viewer.
	cx := math.Min(math.Max(viewer.X, tile.MinX), tile.MaxX)
	cy := math.Min(math.Max(viewer.Y, tile.MinY), tile.MaxY)
	dmin := viewer.Dist(geom.Point2{X: cx, Y: cy})
	// Farthest point is one of the corners.
	dmax := 0.0
	for _, c := range [4]geom.Point2{
		{X: tile.MinX, Y: tile.MinY}, {X: tile.MaxX, Y: tile.MinY},
		{X: tile.MinX, Y: tile.MaxY}, {X: tile.MaxX, Y: tile.MaxY},
	} {
		if d := viewer.Dist(c); d > dmax {
			dmax = d
		}
	}
	return scale * dmin, scale * dmax
}
