package dm

import (
	"math/rand"
	"testing"

	"dmesh/internal/geom"
)

// TestRandomQueriesMatchInMemoryCut fires random (ROI, LOD) queries at the
// store and checks every result against the in-memory interval cut — the
// randomized end-to-end oracle for viewpoint-independent retrieval.
func TestRandomQueriesMatchInMemoryCut(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds, _ := buildDataset(t, 9, name)
		s := newTestStore(t, ds)
		rng := rand.New(rand.NewSource(77))
		var lods []float64
		for i := range ds.Tree.Nodes {
			if !ds.Tree.Nodes[i].IsLeaf() {
				lods = append(lods, ds.Tree.Nodes[i].ELow)
			}
		}
		for trial := 0; trial < 40; trial++ {
			x0, y0 := rng.Float64(), rng.Float64()
			w, h := rng.Float64()*0.6, rng.Float64()*0.6
			roi := geom.NewRect(x0, y0, x0+w, y0+h)
			var e float64
			if trial%5 != 0 {
				e = lods[rng.Intn(len(lods))] // exactly at an interval boundary
			} else {
				e = rng.Float64() * lods[len(lods)-1]
			}
			res, err := s.ViewpointIndependent(roi, e)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for i := range ds.Tree.Nodes {
				n := &ds.Tree.Nodes[i]
				if n.Interval().Contains(e) && roi.ContainsPoint(n.Pos.XY()) {
					want++
				}
			}
			if len(res.Vertices) != want {
				t.Fatalf("%s trial %d (roi %v, e %g): %d vertices, want %d",
					name, trial, roi, e, len(res.Vertices), want)
			}
		}
	}
}

// TestRandomPlaneQueriesLiveRule does the same for random query planes.
func TestRandomPlaneQueriesLiveRule(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	rng := rand.New(rand.NewSource(101))
	maxE := eAtPercentile(ds, 0.999)
	for trial := 0; trial < 15; trial++ {
		x0, y0 := rng.Float64()*0.5, rng.Float64()*0.5
		roi := geom.NewRect(x0, y0, x0+0.2+rng.Float64()*0.3, y0+0.2+rng.Float64()*0.3)
		emin := rng.Float64() * maxE / 2
		emax := emin + rng.Float64()*maxE/2
		qp := geom.QueryPlane{R: roi, EMin: emin, EMax: emax, Axis: trial % 2}
		res, err := s.SingleBase(qp)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := range ds.Tree.Nodes {
			n := &ds.Tree.Nodes[i]
			if !roi.ContainsPoint(n.Pos.XY()) {
				continue
			}
			if n.Interval().Contains(qp.EAt(n.Pos.X, n.Pos.Y)) {
				want++
			}
		}
		if len(res.Vertices) != want {
			t.Fatalf("trial %d: %d vertices, want %d", trial, len(res.Vertices), want)
		}
	}
}
