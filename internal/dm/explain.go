package dm

import (
	"fmt"
	"strings"

	"dmesh/internal/costmodel"
	"dmesh/internal/geom"
)

// Plan describes how a viewpoint-dependent query would execute: the cubes
// the optimizer chose and their estimated costs — the EXPLAIN of this
// little database.
type Plan struct {
	Strips []PlanStrip
	// EstimatedDA is the cost model's prediction for the whole plan
	// (boundary-shared pages counted once).
	EstimatedDA float64
	// SingleBaseDA is the prediction for the unsplit single-base cube,
	// for comparison.
	SingleBaseDA float64
}

// PlanStrip is one planned range query.
type PlanStrip struct {
	Strip       costmodel.Strip
	EstimatedDA float64
}

// ExplainPlane returns the multi-base plan for qp without executing it.
func (s *Store) ExplainPlane(qp geom.QueryPlane, model *costmodel.Model, maxStrips int) (*Plan, error) {
	if model == nil {
		return nil, fmt.Errorf("dm: ExplainPlane requires a cost model")
	}
	strips := model.PlanStrips(qp, maxStrips)
	p := &Plan{}
	for _, st := range strips {
		da := model.EstimateDA(st.Box())
		p.Strips = append(p.Strips, PlanStrip{Strip: st, EstimatedDA: da})
		p.EstimatedDA += da
	}
	single := geom.BoxFromRect(qp.R, qp.EMin, qp.EMax)
	p.SingleBaseDA = model.EstimateDA(single)
	return p, nil
}

// String renders the plan in an EXPLAIN-like text form.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "multi-base plan: %d cube(s), estimated %.1f DA (single-base %.1f DA)\n",
		len(p.Strips), p.EstimatedDA, p.SingleBaseDA)
	for i, st := range p.Strips {
		fmt.Fprintf(&sb, "  cube %d: %v x [%.4g, %.4g]  est %.1f DA\n",
			i, st.Strip.R, st.Strip.ELow, st.Strip.EHigh, st.EstimatedDA)
	}
	return sb.String()
}
