package dm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dmesh/internal/geom"
	"dmesh/internal/pm"
	"dmesh/internal/storage/heapfile"
)

// Packed record encoding (LayoutPacked, store format v4): the same node
// tuple as the fixed and variable encodings, entropy-coded so that pages
// hold 2-4x more records — fewer data-page reads for every query, the
// paper's own cost metric. The encoding is exact: a decoded Node is
// byte-for-byte equal (IEEE bit patterns included) to what the other
// encodings produce, which the reconstruction anchor
// (TestViewpointIndependentExactAgainstReplay) depends on.
//
// Wire format, in order:
//
//	uvarint   node ID
//	uint16    field-presence bitmap (little-endian; see pk* bits)
//	[int64    overflow chain head, only when pkOverflow is set]
//	floats    X, Y, Z, ELow, EHigh — each either omitted (pkELowZero /
//	          pkEHighInf), a zigzag-varint dyadic grid index (pk*Dyadic),
//	          or 8 raw little-endian IEEE-754 bits
//	refs      Parent, Child1, Child2, Wing1, Wing2 — zigzag varint of
//	          (ref - ID) when the matching presence bit is set, omitted
//	          (meaning pm.None) otherwise
//	uvarint   total connection count
//	deltas    inline connection IDs: zigzag varint of conn[0]-ID, then
//	          conn[i]-conn[i-1] (lists are sorted, so deltas are small);
//	          the inline run ends at the record's physical end, IDs
//	          beyond it live in the (raw) overflow chain
//
// Escape rules: pm.None (-1) topology references are never delta-coded —
// their presence bit is simply clear. ELow +0.0 (the majority: every
// leaf) and EHigh +Inf (every root) cost 0 bytes. A float is dyadic when
// value*2^12 is an integer whose round-trip through float64 restores the
// exact bit pattern — true for the grid coordinates i/2^k and their
// collapse midpoints, never true for NaN (any payload), infinities, or
// -0.0, which all take the raw 8-byte path.
const (
	pkParent = 1 << iota
	pkChild1
	pkChild2
	pkWing1
	pkWing2
	pkXDyadic
	pkYDyadic
	pkZDyadic
	pkELowZero
	pkELowDyadic
	pkEHighInf
	pkEHighDyadic
	pkOverflow
	// pkReserved bits must be zero; a set bit marks a corrupt record.
	pkReserved = 0xE000
)

// dyadicShift scales the dyadic fast path: v is storable as an integer
// grid index when v*2^12 round-trips exactly. 2^12 captures the terrain
// grids (i/2^k for sizes 2^k+1) and several collapse-midpoint levels
// while keeping indices of unit-square coordinates at 2-byte varints.
const (
	dyadicShift = 12
	dyadicScale = float64(int64(1) << dyadicShift)
	// dyadicMaxM bounds the stored index so its varint never exceeds 6
	// bytes (beyond that raw 8-byte floats are as small and simpler).
	dyadicMaxM = int64(1) << 41
)

// maxPackedConn is the sanity bound on a packed record's connection
// count: far above any real valence (the paper's average total list is
// 840 at 17M points), far below anything that could wedge a decoder fed
// a corrupt count.
const maxPackedConn = 1 << 32

// ErrCorrupt marks a packed record (or its overflow chain) whose bytes
// cannot be a valid encoding. Decoders return it — wrapped with
// position detail — instead of panicking, matching the bounded-descent
// discipline of the rtree/btree corruption handling.
var ErrCorrupt = errors.New("dm: corrupt record")

// zigzag maps signed values to unsigned so small magnitudes of either
// sign take short varints.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns how many bytes binary.AppendUvarint emits for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// dyadicIndex reports whether v is exactly representable as a dyadic
// grid index m = v*2^dyadicShift: m must be integral, in range, and
// float64(m)/2^dyadicShift must restore v's exact bit pattern (which
// excludes NaNs, infinities, and -0.0 by construction).
func dyadicIndex(v float64) (int64, bool) {
	m := v * dyadicScale
	if m != math.Trunc(m) || m > float64(dyadicMaxM) || m < -float64(dyadicMaxM) {
		return 0, false
	}
	k := int64(m)
	if math.Float64bits(float64(k)/dyadicScale) != math.Float64bits(v) {
		return 0, false
	}
	return k, true
}

// DyadicIndex reports whether v is exactly representable on the packed
// encoding's dyadic grid, and its index m = v*2^12 when it is. The
// progressive stream codec shares this fast path so quantized wire
// positions round-trip bit-exactly.
func DyadicIndex(v float64) (int64, bool) { return dyadicIndex(v) }

// FromDyadicIndex inverts DyadicIndex: the float64 whose dyadic index
// is m. Exact for every m DyadicIndex can produce.
func FromDyadicIndex(m int64) float64 { return float64(m) / dyadicScale }

// packedFlags computes the record's presence bitmap and, alongside it,
// the dyadic indices of the float fields that have one. Encoding and
// length computation share it so they can never disagree.
func packedFlags(n *Node, overflow bool) (flags uint16, dy [5]int64) {
	refs := [5]int64{n.Parent, n.Child1, n.Child2, n.Wing1, n.Wing2}
	for i, r := range refs {
		if r != pm.None {
			flags |= 1 << i
		}
	}
	vals := [5]float64{n.Pos.X, n.Pos.Y, n.Pos.Z, n.ELow, n.EHigh}
	dyBits := [5]uint16{pkXDyadic, pkYDyadic, pkZDyadic, pkELowDyadic, pkEHighDyadic}
	for i, v := range vals {
		if i == 3 && math.Float64bits(v) == 0 {
			flags |= pkELowZero
			continue
		}
		if i == 4 && math.Float64bits(v) == math.Float64bits(math.Inf(1)) {
			flags |= pkEHighInf
			continue
		}
		if m, ok := dyadicIndex(v); ok {
			flags |= dyBits[i]
			dy[i] = m
		}
	}
	if overflow {
		flags |= pkOverflow
	}
	return flags, dy
}

// packedRecordLen returns the encoded byte length of n's record with the
// given inline connection prefix, without materializing it. It mirrors
// encodePackedRecord exactly; the page-fill simulation of the packing
// pass and the spill split both rely on that.
func packedRecordLen(n *Node, inline int, overflow bool) int {
	flags, dy := packedFlags(n, overflow)
	size := uvarintLen(uint64(n.ID)) + 2
	if overflow {
		size += 8
	}
	dyBits := [5]uint16{pkXDyadic, pkYDyadic, pkZDyadic, pkELowDyadic, pkEHighDyadic}
	for i, bit := range dyBits {
		switch {
		case i == 3 && flags&pkELowZero != 0, i == 4 && flags&pkEHighInf != 0:
		case flags&bit != 0:
			size += uvarintLen(zigzag(dy[i]))
		default:
			size += 8
		}
	}
	refs := [5]int64{n.Parent, n.Child1, n.Child2, n.Wing1, n.Wing2}
	for i, r := range refs {
		if flags&(1<<i) != 0 {
			size += uvarintLen(zigzag(r - n.ID))
		}
	}
	size += uvarintLen(uint64(len(n.Conn)))
	prev := n.ID
	for _, c := range n.Conn[:inline] {
		size += uvarintLen(zigzag(c - prev))
		prev = c
	}
	return size
}

// packedSplit returns how many connection IDs the packed record stores
// inline: the whole list when the record fits a slotted page (the
// overwhelmingly common case — packed lists cost 1-2 bytes per ID), else
// the longest prefix that fits once the 8-byte overflow head is added.
func packedSplit(n *Node) int {
	if packedRecordLen(n, len(n.Conn), false) <= heapfile.MaxVarRecord {
		return len(n.Conn)
	}
	size := packedRecordLen(n, 0, true)
	inline := 0
	prev := n.ID
	for _, c := range n.Conn {
		l := uvarintLen(zigzag(c - prev))
		if size+l > heapfile.MaxVarRecord {
			break
		}
		size += l
		prev = c
		inline++
	}
	return inline
}

// encodePackedRecord appends n's compressed record to buf[:0] with the
// first inline connection IDs stored in place and overflowRef chaining
// the rest (noOverflow when the list is wholly inline).
func encodePackedRecord(n *Node, overflowRef int64, inline int, buf []byte) []byte {
	buf = buf[:0]
	buf = binary.AppendUvarint(buf, uint64(n.ID))
	flags, dy := packedFlags(n, overflowRef != noOverflow)
	bitmapOff := len(buf)
	buf = append(buf, 0, 0)
	binary.LittleEndian.PutUint16(buf[bitmapOff:], flags)
	if overflowRef != noOverflow {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(overflowRef))
	}
	vals := [5]float64{n.Pos.X, n.Pos.Y, n.Pos.Z, n.ELow, n.EHigh}
	dyBits := [5]uint16{pkXDyadic, pkYDyadic, pkZDyadic, pkELowDyadic, pkEHighDyadic}
	for i, v := range vals {
		switch {
		case i == 3 && flags&pkELowZero != 0, i == 4 && flags&pkEHighInf != 0:
		case flags&dyBits[i] != 0:
			buf = binary.AppendUvarint(buf, zigzag(dy[i]))
		default:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	refs := [5]int64{n.Parent, n.Child1, n.Child2, n.Wing1, n.Wing2}
	for i, r := range refs {
		if flags&(1<<i) != 0 {
			buf = binary.AppendUvarint(buf, zigzag(r-n.ID))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(n.Conn)))
	prev := n.ID
	for _, c := range n.Conn[:inline] {
		buf = binary.AppendUvarint(buf, zigzag(c-prev))
		prev = c
	}
	return buf
}

// decodePackedRecord decodes one packed record: the node with the inline
// portion of its connection list, the total connection count, and the
// overflow chain head (noOverflow when wholly inline). Malformed bytes
// surface as errors wrapping ErrCorrupt, never panics, and never
// unbounded allocations — the Conn capacity is bounded by the record's
// own physical length. arena may be nil.
func decodePackedRecord(buf []byte, arena *connArena) (n Node, connTotal int, overflowRef int64, err error) {
	off := 0
	fail := func(what string) error {
		return fmt.Errorf("dm: packed record: %s at offset %d: %w", what, off, ErrCorrupt)
	}
	readUvarint := func() (uint64, bool) {
		v, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return 0, false
		}
		off += k
		return v, true
	}
	readRaw := func() (uint64, bool) {
		if off+8 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, true
	}

	id, ok := readUvarint()
	if !ok || id > math.MaxInt64 {
		return Node{}, 0, 0, fail("node ID")
	}
	n.ID = int64(id)
	if off+2 > len(buf) {
		return Node{}, 0, 0, fail("bitmap")
	}
	flags := binary.LittleEndian.Uint16(buf[off:])
	off += 2
	if flags&pkReserved != 0 ||
		flags&(pkELowZero|pkELowDyadic) == pkELowZero|pkELowDyadic ||
		flags&(pkEHighInf|pkEHighDyadic) == pkEHighInf|pkEHighDyadic {
		return Node{}, 0, 0, fail("bitmap bits")
	}
	overflowRef = noOverflow
	if flags&pkOverflow != 0 {
		u, ok := readRaw()
		if !ok {
			return Node{}, 0, 0, fail("overflow head")
		}
		overflowRef = int64(u)
	}

	var vals [5]float64
	dyBits := [5]uint16{pkXDyadic, pkYDyadic, pkZDyadic, pkELowDyadic, pkEHighDyadic}
	for i := range vals {
		switch {
		case i == 3 && flags&pkELowZero != 0:
			vals[i] = 0
		case i == 4 && flags&pkEHighInf != 0:
			vals[i] = math.Inf(1)
		case flags&dyBits[i] != 0:
			u, ok := readUvarint()
			if !ok {
				return Node{}, 0, 0, fail("dyadic float")
			}
			vals[i] = float64(unzigzag(u)) / dyadicScale
		default:
			u, ok := readRaw()
			if !ok {
				return Node{}, 0, 0, fail("raw float")
			}
			vals[i] = math.Float64frombits(u)
		}
	}
	n.Pos = geom.Point3{X: vals[0], Y: vals[1], Z: vals[2]}
	n.ELow, n.EHigh = vals[3], vals[4]

	refs := [5]int64{pm.None, pm.None, pm.None, pm.None, pm.None}
	for i := range refs {
		if flags&(1<<i) != 0 {
			u, ok := readUvarint()
			if !ok {
				return Node{}, 0, 0, fail("topology ref")
			}
			refs[i] = n.ID + unzigzag(u)
		}
	}
	n.Parent, n.Child1, n.Child2 = refs[0], refs[1], refs[2]
	n.Wing1, n.Wing2 = refs[3], refs[4]

	total, ok := readUvarint()
	if !ok || total > maxPackedConn {
		return Node{}, 0, 0, fail("connection count")
	}
	connTotal = int(total)
	// Inline deltas run to the record's physical end. Capacity is exact
	// for wholly-inline lists (each delta costs at least one byte, so the
	// remaining bytes bound the entries) and spilled lists grow out of
	// the arena chunk during the chain walk — the rare case pays one
	// reallocation instead of every record paying a per-fetch make.
	capacity := connTotal
	if rem := len(buf) - off; capacity > rem {
		capacity = rem
	}
	n.Conn = arena.alloc(capacity)
	prev := n.ID
	for off < len(buf) {
		u, ok := readUvarint()
		if !ok {
			return Node{}, 0, 0, fail("connection delta")
		}
		prev += unzigzag(u)
		n.Conn = append(n.Conn, prev)
	}
	if len(n.Conn) > connTotal {
		return Node{}, 0, 0, fail("more inline IDs than count")
	}
	if overflowRef == noOverflow && len(n.Conn) != connTotal {
		return Node{}, 0, 0, fail("truncated inline connection list")
	}
	return n, connTotal, overflowRef, nil
}

// connArena batch-allocates the Conn slices decoded nodes retain: the
// assembly maps hold fetched nodes for the life of one query, so their
// list allocations are batched into chunks instead of one make per
// record. The arena never recycles memory — each alloc hands out a
// fresh, capacity-clamped window, so a slice stays valid as long as its
// node does (coherent sessions retain nodes across frames) and appends
// past the window reallocate instead of clobbering a neighbor.
type connArena struct {
	free []int64
}

// connArenaChunk is the chunk size in IDs (32 KiB); lists longer than a
// quarter of it are allocated directly to keep chunk waste bounded.
const connArenaChunk = 4096

func (a *connArena) alloc(c int) []int64 {
	if a == nil || c > connArenaChunk/4 {
		return make([]int64, 0, c)
	}
	if len(a.free) < c {
		a.free = make([]int64, connArenaChunk)
	}
	out := a.free[0:0:c]
	a.free = a.free[c:]
	return out
}
