package dm

import (
	"encoding/binary"
	"math"
	"sort"

	"dmesh/internal/geom"
)

// CanonicalMesh serializes a query answer into one deterministic byte
// string: vertices sorted by ID with raw IEEE-754 coordinate bits,
// edges normalized low-high and sorted, triangles canonicalized and
// sorted. Two answers are the same mesh — positions bit for bit — iff
// their canonical serializations are equal, which is the equality the
// exactness properties (cluster vs single node, streamed vs direct)
// are stated in.
func CanonicalMesh(res *Result) []byte {
	var buf []byte
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }

	ids := make([]int64, 0, len(res.Vertices))
	for id := range res.Vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	u64(uint64(len(ids)))
	for _, id := range ids {
		p := res.Vertices[id]
		u64(uint64(id))
		u64(math.Float64bits(p.X))
		u64(math.Float64bits(p.Y))
		u64(math.Float64bits(p.Z))
	}

	edges := make([][2]int64, 0, len(res.Edges))
	for _, e := range res.Edges {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	u64(uint64(len(edges)))
	for _, e := range edges {
		u64(uint64(e[0]))
		u64(uint64(e[1]))
	}

	tris := make([]geom.Triangle, 0, len(res.Triangles))
	for _, t := range res.Triangles {
		tris = append(tris, t.Canon())
	}
	sort.Slice(tris, func(i, j int) bool {
		if tris[i].A != tris[j].A {
			return tris[i].A < tris[j].A
		}
		if tris[i].B != tris[j].B {
			return tris[i].B < tris[j].B
		}
		return tris[i].C < tris[j].C
	})
	u64(uint64(len(tris)))
	for _, t := range tris {
		u64(uint64(t.A))
		u64(uint64(t.B))
		u64(uint64(t.C))
	}
	return buf
}
