package dm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dmesh/internal/costmodel"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
	"dmesh/internal/storage/pager"
)

// Session is a per-query (or per-request) view of a Store that attributes
// disk accesses to itself: queries run through a Session update the
// store's global counters AND the session's own, so a server can report
// each request's cost while other requests run — no global query lock, no
// ResetStats between requests. Every page read is charged to exactly one
// session, so concurrent sessions' DiskAccesses sum to the store total.
//
// A Session embeds a Store view, so the full query API
// (ViewpointIndependent, SingleBase, MultiBase, ExecuteStrips, Radial,
// FetchByID) is available directly. Sessions are cheap to create — one
// per request is the intended pattern — and must not be shared between
// concurrent requests if their counts are to stay per-request.
// Whole-store maintenance (DropCaches, Flush, Close) belongs on the
// parent Store.
type Session struct {
	Store
	heapS, overS, rtS, idxS *pager.Session
}

// NewSession returns a view of the store whose queries attribute their
// disk accesses to the returned session.
func (s *Store) NewSession() *Session {
	q := &Session{
		Store: *s,
		heapS: pager.NewSession(),
		overS: pager.NewSession(),
		rtS:   pager.NewSession(),
		idxS:  pager.NewSession(),
	}
	q.heapP = s.heapP.WithSession(q.heapS)
	q.overP = s.overP.WithSession(q.overS)
	q.rtP = s.rtP.WithSession(q.rtS)
	q.idxP = s.idxP.WithSession(q.idxS)
	if s.heap != nil {
		q.heap = s.heap.WithSession(q.heapS)
	}
	if s.vheap != nil {
		q.vheap = s.vheap.WithSession(q.heapS)
	}
	q.over = s.over.WithSession(q.overS)
	q.rt = s.rt.WithSession(q.rtS)
	q.idx = s.idx.WithSession(q.idxS)
	// A trace is single-goroutine; a session spawned from a traced store
	// starts untraced (attach its own with NewTrace/SetTrace).
	q.tr = nil
	return q
}

// NewTrace attaches (and returns) a fresh phase tracer bound to this
// session's own disk-access counters, so span DA attribution stays
// exact while other sessions share the store's buffer pool.
func (q *Session) NewTrace() *obs.Trace {
	tr := obs.NewTrace(q.DiskAccesses)
	q.SetTrace(tr)
	return tr
}

// DiskAccesses returns the pages read by this session's queries — the
// paper's cost metric, scoped to this session only.
func (q *Session) DiskAccesses() uint64 {
	return q.heapS.Reads() + q.overS.Reads() + q.rtS.Reads() + q.idxS.Reads()
}

// Breakdown itemizes this session's disk accesses by file.
func (q *Session) Breakdown() AccessBreakdown {
	return AccessBreakdown{
		Data:     q.heapS.Reads(),
		Overflow: q.overS.Reads(),
		Index:    q.rtS.Reads(),
		IDIndex:  q.idxS.Reads(),
	}
}

// ResetStats zeroes this session's counters (the store's global counters
// are untouched; reset those on the parent Store).
func (q *Session) ResetStats() {
	q.heapS.Reset()
	q.overS.Reset()
	q.rtS.Reset()
	q.idxS.Reset()
}

// BatchQuery describes one independent query of a batch. Plane nil means
// a viewpoint-independent query Q(ROI, E); Plane non-nil is a
// viewpoint-dependent query, executed single-base unless Strips carries
// an explicit (e.g. cost-model) plan.
type BatchQuery struct {
	ROI    geom.Rect
	E      float64
	Plane  *geom.QueryPlane
	Strips []costmodel.Strip
}

// BatchResult is one query's outcome: the mesh, the disk accesses
// attributed to exactly this query, and its error if any.
type BatchResult struct {
	Res *Result
	DA  uint64
	Err error
}

// QueryBatch answers independent queries concurrently against one store
// with at most workers goroutines (<= 0 means GOMAXPROCS). Each query
// runs in its own Session, so per-query disk-access counts are exact even
// though the queries share the buffer pool. Results are positional:
// out[i] answers qs[i].
func (s *Store) QueryBatch(qs []BatchQuery, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	out := make([]BatchResult, len(qs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				out[i] = s.runBatchQuery(qs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

func (s *Store) runBatchQuery(q BatchQuery) BatchResult {
	sess := s.NewSession()
	var res *Result
	var err error
	switch {
	case q.Plane == nil:
		res, err = sess.ViewpointIndependent(q.ROI, q.E)
	case len(q.Strips) > 0:
		res, err = sess.ExecuteStrips(*q.Plane, q.Strips)
	default:
		res, err = sess.SingleBase(*q.Plane)
	}
	return BatchResult{Res: res, DA: sess.DiskAccesses(), Err: err}
}
