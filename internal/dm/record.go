package dm

import (
	"encoding/binary"
	"math"

	"dmesh/internal/geom"
)

// On-disk Direct Mesh record: exactly the paper's node tuple
// (ID, x, y, z, e_low, e_high, parent, child1, child2, wing1, wing2)
// followed by the connection list. Lists longer than ConnInline continue
// in overflow records (a chain in a separate heap file), keeping the main
// record fixed-size; the paper reports an average similar-LOD list length
// of 12, so ConnInline=12 makes overflow uncommon.
const (
	// dmFixed is the fixed (non-connection) part of the record.
	dmFixed = 8 + 24 + 8 + 8 + 5*8
	// ConnInline is how many connection IDs fit in the main record.
	ConnInline = 12
	// RecordSize is the fixed main-record size.
	RecordSize = dmFixed + 2 + 8 + ConnInline*8

	// OverflowFanout is how many IDs one overflow record holds.
	OverflowFanout = 32
	// OverflowRecordSize is the fixed overflow-record size: a next-record
	// reference, a count, and the IDs.
	OverflowRecordSize = 8 + 2 + OverflowFanout*8

	// noOverflow marks the end of an overflow chain.
	noOverflow = int64(-1)
)

// encodeRecord writes n's record into buf (len >= RecordSize), with the
// first overflowRef chaining any connection IDs beyond ConnInline. Unlike
// the PM record, the DM record omits the raw error, footprint MBR, and
// anything derivable from other rows: Direct Mesh queries never chase the
// tree, so nodes only carry what reconstruction reads.
func encodeRecord(n *Node, overflowRef int64, buf []byte) {
	le := binary.LittleEndian
	off := 0
	putI := func(v int64) { le.PutUint64(buf[off:], uint64(v)); off += 8 }
	putF := func(v float64) { le.PutUint64(buf[off:], math.Float64bits(v)); off += 8 }
	putI(n.ID)
	putF(n.Pos.X)
	putF(n.Pos.Y)
	putF(n.Pos.Z)
	putF(n.ELow)
	putF(n.EHigh)
	putI(n.Parent)
	putI(n.Child1)
	putI(n.Child2)
	putI(n.Wing1)
	putI(n.Wing2)
	le.PutUint16(buf[off:], uint16(len(n.Conn)))
	le.PutUint64(buf[off+2:], uint64(overflowRef))
	off += 10
	inline := len(n.Conn)
	if inline > ConnInline {
		inline = ConnInline
	}
	for i := 0; i < inline; i++ {
		le.PutUint64(buf[off+i*8:], uint64(n.Conn[i]))
	}
}

// decodeRecordHeader decodes everything except overflowed connection IDs,
// returning the node (with the inline portion of Conn), the total
// connection count, and the overflow chain head. Fields the DM record
// does not store (raw error, footprint) stay zero.
func decodeRecordHeader(buf []byte) (n Node, connTotal int, overflowRef int64) {
	le := binary.LittleEndian
	off := 0
	getI := func() int64 { v := int64(le.Uint64(buf[off:])); off += 8; return v }
	getF := func() float64 { v := math.Float64frombits(le.Uint64(buf[off:])); off += 8; return v }
	n.ID = getI()
	n.Pos = geom.Point3{X: getF(), Y: getF(), Z: getF()}
	n.ELow = getF()
	n.EHigh = getF()
	n.Parent = getI()
	n.Child1 = getI()
	n.Child2 = getI()
	n.Wing1 = getI()
	n.Wing2 = getI()
	connTotal = int(le.Uint16(buf[off:]))
	overflowRef = int64(le.Uint64(buf[off+2:]))
	off += 10
	inline := connTotal
	if inline > ConnInline {
		inline = ConnInline
	}
	n.Conn = make([]int64, 0, connTotal)
	for i := 0; i < inline; i++ {
		n.Conn = append(n.Conn, int64(le.Uint64(buf[off+i*8:])))
	}
	return n, connTotal, overflowRef
}

// encodeOverflow writes one overflow record holding ids (len <=
// OverflowFanout) chaining to next.
func encodeOverflow(ids []int64, next int64, buf []byte) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(next))
	le.PutUint16(buf[8:], uint16(len(ids)))
	for i, id := range ids {
		le.PutUint64(buf[10+i*8:], uint64(id))
	}
}

// decodeOverflow reads one overflow record. A corrupted count is clamped
// to the record's physical capacity — the caller's total-length check
// then reports the inconsistency instead of an out-of-range panic here.
func decodeOverflow(buf []byte) (ids []int64, next int64) {
	le := binary.LittleEndian
	next = int64(le.Uint64(buf[0:]))
	cnt := int(le.Uint16(buf[8:]))
	if cnt > OverflowFanout {
		cnt = OverflowFanout
	}
	ids = make([]int64, cnt)
	for i := 0; i < cnt; i++ {
		ids[i] = int64(le.Uint64(buf[10+i*8:]))
	}
	return ids, next
}
