package dm

import (
	"encoding/binary"
	"fmt"
	"math"

	"dmesh/internal/geom"
	"dmesh/internal/storage/heapfile"
)

// On-disk Direct Mesh record: exactly the paper's node tuple
// (ID, x, y, z, e_low, e_high, parent, child1, child2, wing1, wing2)
// followed by the connection list. Two physical encodings share the same
// field layout (fixed part, connection count, overflow chain head, inline
// connection IDs) and differ only in how many IDs are inline:
//
//   - Fixed records (LayoutSTR/Hilbert/RowMajor): exactly ConnInline
//     inline slots, lists beyond that chain through fixed-size overflow
//     records in a separate heap file. The paper reports an average
//     similar-LOD list length of 12, so ConnInline=12 makes overflow
//     uncommon — but the overflow file has no locality to the owners,
//     which `dmbench -fig dabreakdown` shows as the largest DA phase.
//
//   - Variable records (LayoutConnect): the record is exactly as long as
//     its list, so the common case is wholly inline; only lists that
//     cannot fit one slotted page spill, into variable-length overflow
//     records co-allocated immediately before the owner in the same file.
const (
	// dmFixed is the fixed (non-connection) part of the record.
	dmFixed = 8 + 24 + 8 + 8 + 5*8
	// recHeaderSize adds the connection count and the overflow chain head.
	recHeaderSize = dmFixed + 2 + 8
	// ConnInline is how many connection IDs fit in the fixed main record.
	ConnInline = 12
	// RecordSize is the fixed main-record size.
	RecordSize = recHeaderSize + ConnInline*8

	// OverflowFanout is how many IDs one fixed overflow record holds.
	OverflowFanout = 32
	// OverflowRecordSize is the fixed overflow-record size: a next-record
	// reference, a count, and the IDs.
	OverflowRecordSize = 8 + 2 + OverflowFanout*8

	// ConnectInlineMax is the largest fully-inline connection list of a
	// variable (LayoutConnect) record: bounded by the slotted page.
	ConnectInlineMax = (heapfile.MaxVarRecord - recHeaderSize) / 8
	// connectOverflowFanout is how many IDs one variable overflow record
	// holds at most (also bounded by the slotted page).
	connectOverflowFanout = (heapfile.MaxVarRecord - 10) / 8

	// noOverflow marks the end of an overflow chain.
	noOverflow = int64(-1)
)

// encodeRecordInline writes n's record into buf (len >= recHeaderSize +
// 8*inline), with the first inline connection IDs stored in place and
// overflowRef chaining the rest. inline must not exceed len(n.Conn).
func encodeRecordInline(n *Node, overflowRef int64, inline int, buf []byte) {
	le := binary.LittleEndian
	off := 0
	putI := func(v int64) { le.PutUint64(buf[off:], uint64(v)); off += 8 }
	putF := func(v float64) { le.PutUint64(buf[off:], math.Float64bits(v)); off += 8 }
	putI(n.ID)
	putF(n.Pos.X)
	putF(n.Pos.Y)
	putF(n.Pos.Z)
	putF(n.ELow)
	putF(n.EHigh)
	putI(n.Parent)
	putI(n.Child1)
	putI(n.Child2)
	putI(n.Wing1)
	putI(n.Wing2)
	le.PutUint16(buf[off:], uint16(len(n.Conn)))
	le.PutUint64(buf[off+2:], uint64(overflowRef))
	off += 10
	for i := 0; i < inline; i++ {
		le.PutUint64(buf[off+i*8:], uint64(n.Conn[i]))
	}
}

// encodeRecord writes n's fixed-size record into buf (len >= RecordSize):
// up to ConnInline IDs inline, the rest behind overflowRef. Unlike the PM
// record, the DM record omits the raw error, footprint MBR, and anything
// derivable from other rows: Direct Mesh queries never chase the tree, so
// nodes only carry what reconstruction reads.
func encodeRecord(n *Node, overflowRef int64, buf []byte) {
	inline := len(n.Conn)
	if inline > ConnInline {
		inline = ConnInline
	}
	encodeRecordInline(n, overflowRef, inline, buf)
}

// connectRecordLen is the variable-record length for a connection list of
// total IDs, of which inline are stored in the record.
func connectRecordLen(inline int) int { return recHeaderSize + inline*8 }

// connectInline is how many of a total-length connection list a variable
// record stores inline (the whole list unless it cannot fit a page).
func connectInline(total int) int {
	if total > ConnectInlineMax {
		return ConnectInlineMax
	}
	return total
}

// encodeConnectRecord appends n's variable-length record to buf[:0]:
// wholly inline up to ConnectInlineMax IDs, the rest behind overflowRef.
func encodeConnectRecord(n *Node, overflowRef int64, buf []byte) []byte {
	inline := connectInline(len(n.Conn))
	need := connectRecordLen(inline)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	encodeRecordInline(n, overflowRef, inline, buf)
	return buf
}

// decodeRecordHeader decodes everything except overflowed connection IDs,
// returning the node (with the inline portion of Conn), the total
// connection count, and the overflow chain head. The buffer length is the
// record: its inline capacity is (len(buf)-recHeaderSize)/8, which covers
// both the fixed encoding (buf[:RecordSize], capacity ConnInline) and the
// exact-length variable encoding. Fields the DM record does not store
// (raw error, footprint) stay zero. The Conn slice is drawn from arena
// (which may be nil) so one query's fetches share chunked allocations.
func decodeRecordHeader(buf []byte, arena *connArena) (n Node, connTotal int, overflowRef int64) {
	le := binary.LittleEndian
	off := 0
	getI := func() int64 { v := int64(le.Uint64(buf[off:])); off += 8; return v }
	getF := func() float64 { v := math.Float64frombits(le.Uint64(buf[off:])); off += 8; return v }
	n.ID = getI()
	n.Pos = geom.Point3{X: getF(), Y: getF(), Z: getF()}
	n.ELow = getF()
	n.EHigh = getF()
	n.Parent = getI()
	n.Child1 = getI()
	n.Child2 = getI()
	n.Wing1 = getI()
	n.Wing2 = getI()
	connTotal = int(le.Uint16(buf[off:]))
	overflowRef = int64(le.Uint64(buf[off+2:]))
	off += 10
	inline := connTotal
	if max := (len(buf) - recHeaderSize) / 8; inline > max {
		inline = max
	}
	n.Conn = arena.alloc(connTotal)
	for i := 0; i < inline; i++ {
		n.Conn = append(n.Conn, int64(le.Uint64(buf[off+i*8:])))
	}
	return n, connTotal, overflowRef
}

// checkConnectRecord validates a variable record's physical length before
// decoding: corrupted slot directories surface as errors, not panics.
func checkConnectRecord(buf []byte) error {
	if len(buf) < recHeaderSize || (len(buf)-recHeaderSize)%8 != 0 {
		return fmt.Errorf("dm: malformed %d-byte connect record", len(buf))
	}
	return nil
}

// encodeOverflow writes one fixed overflow record holding ids (len <=
// OverflowFanout) chaining to next.
func encodeOverflow(ids []int64, next int64, buf []byte) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(next))
	le.PutUint16(buf[8:], uint16(len(ids)))
	for i, id := range ids {
		le.PutUint64(buf[10+i*8:], uint64(id))
	}
}

// encodeConnectOverflow appends one variable overflow record to buf[:0]:
// the same next/count/IDs layout at exactly the needed length.
func encodeConnectOverflow(ids []int64, next int64, buf []byte) []byte {
	need := 10 + len(ids)*8
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	encodeOverflow(ids, next, buf)
	return buf
}

// decodeOverflow reads one overflow record of either encoding. A
// corrupted count is clamped to the record's physical capacity — the
// caller's total-length check then reports the inconsistency instead of
// an out-of-range panic here.
func decodeOverflow(buf []byte) (ids []int64, next int64) {
	le := binary.LittleEndian
	next = int64(le.Uint64(buf[0:]))
	cnt := int(le.Uint16(buf[8:]))
	if max := (len(buf) - 10) / 8; cnt > max {
		cnt = max
	}
	ids = make([]int64, cnt)
	for i := 0; i < cnt; i++ {
		ids[i] = int64(le.Uint64(buf[10+i*8:]))
	}
	return ids, next
}
