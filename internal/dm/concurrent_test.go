package dm

import (
	"sync"
	"testing"

	"dmesh/internal/geom"
)

// TestConcurrentQueries runs many viewpoint-independent and plane queries
// in parallel against one store: queries are read-only and the pager is
// synchronized, so results must match the serial answers.
func TestConcurrentQueries(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)

	type qcase struct {
		roi geom.Rect
		e   float64
	}
	cases := []qcase{
		{fullRect(), eAtPercentile(ds, 0.3)},
		{geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.6, MaxY: 0.6}, eAtPercentile(ds, 0.5)},
		{geom.Rect{MinX: 0.4, MinY: 0.2, MaxX: 0.9, MaxY: 0.8}, eAtPercentile(ds, 0.8)},
	}
	want := make([]int, len(cases))
	for i, c := range cases {
		res, err := s.ViewpointIndependent(c.roi, c.e)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(res.Vertices)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				c := cases[(g+iter)%len(cases)]
				res, err := s.ViewpointIndependent(c.roi, c.e)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Vertices) != want[(g+iter)%len(cases)] {
					t.Errorf("concurrent query returned %d vertices, want %d",
						len(res.Vertices), want[(g+iter)%len(cases)])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentPlaneQueries runs single-base and multi-base queries in
// parallel against one store and checks every result against the serial
// answer — the viewpoint-dependent paths share fetcher state per query,
// never across queries.
func TestConcurrentPlaneQueries(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	model, err := s.CostModel()
	if err != nil {
		t.Fatal(err)
	}

	planes := []geom.QueryPlane{
		{R: geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.95, MaxY: 0.95},
			EMin: eAtPercentile(ds, 0.2), EMax: eAtPercentile(ds, 0.9), Axis: 1},
		{R: geom.Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.7, MaxY: 0.8},
			EMin: eAtPercentile(ds, 0.4), EMax: eAtPercentile(ds, 0.97), Axis: 0},
	}
	type answer struct{ verts, tris, strips int }
	wantSB := make([]answer, len(planes))
	wantMB := make([]answer, len(planes))
	for i, qp := range planes {
		sb, err := s.SingleBase(qp)
		if err != nil {
			t.Fatal(err)
		}
		wantSB[i] = answer{len(sb.Vertices), len(sb.Triangles), sb.Strips}
		mb, err := s.MultiBase(qp, model, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantMB[i] = answer{len(mb.Vertices), len(mb.Triangles), mb.Strips}
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 6; iter++ {
				i := (g + iter) % len(planes)
				sb, err := s.SingleBase(planes[i])
				if err != nil {
					t.Error(err)
					return
				}
				if got := (answer{len(sb.Vertices), len(sb.Triangles), sb.Strips}); got != wantSB[i] {
					t.Errorf("concurrent SingleBase: got %+v, want %+v", got, wantSB[i])
					return
				}
				mb, err := s.MultiBase(planes[i], model, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if got := (answer{len(mb.Vertices), len(mb.Triangles), mb.Strips}); got != wantMB[i] {
					t.Errorf("concurrent MultiBase: got %+v, want %+v", got, wantMB[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestQueryBatchAttribution checks the batch API's accounting invariant:
// starting cold, the per-query disk accesses reported by QueryBatch sum
// exactly to the store's global counter — every page read is charged to
// exactly one session.
func TestQueryBatchAttribution(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	model, err := s.CostModel()
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.95, MaxY: 0.95},
		EMin: eAtPercentile(ds, 0.3), EMax: eAtPercentile(ds, 0.9), Axis: 1,
	}
	qs := []BatchQuery{
		{ROI: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.6, MaxY: 0.6}, E: eAtPercentile(ds, 0.5)},
		{ROI: geom.Rect{MinX: 0.3, MinY: 0.2, MaxX: 0.9, MaxY: 0.8}, E: eAtPercentile(ds, 0.7)},
		{Plane: &qp},
		{Plane: &qp, Strips: model.PlanStrips(qp, 0)},
		{ROI: fullRect(), E: eAtPercentile(ds, 0.9)},
	}

	// Serial baseline answers (counts only; maps compare by content).
	serial := s.QueryBatch(qs, 1)

	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	out := s.QueryBatch(qs, 4)
	var sum uint64
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		// No per-query DA floor: overlapping queries legitimately hit
		// pages a concurrent sibling already faulted in.
		if len(r.Res.Vertices) != len(serial[i].Res.Vertices) ||
			len(r.Res.Triangles) != len(serial[i].Res.Triangles) {
			t.Fatalf("query %d: concurrent result (%d verts, %d tris) != serial (%d, %d)",
				i, len(r.Res.Vertices), len(r.Res.Triangles),
				len(serial[i].Res.Vertices), len(serial[i].Res.Triangles))
		}
		sum += r.DA
	}
	if global := s.DiskAccesses(); sum != global {
		t.Fatalf("per-query DA sum %d != store global %d", sum, global)
	}
	if sum == 0 {
		t.Fatal("cold batch reports zero disk accesses in total")
	}
}

// TestShardedStoreColdDAMatchesUnsharded: sharding the buffer pool must
// not change the paper's metric on a cold run — with no evictions the
// cold read count is the number of distinct pages touched, independent of
// how they are spread over shards.
func TestShardedStoreColdDAMatchesUnsharded(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	mono := newTestStore(t, ds)
	sharded, err := BuildStore(ds, StorePools{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	roi := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.8, MaxY: 0.8}
	e := eAtPercentile(ds, 0.6)
	coldDA := func(s *Store) uint64 {
		t.Helper()
		if err := s.DropCaches(); err != nil {
			t.Fatal(err)
		}
		s.ResetStats()
		if _, err := s.ViewpointIndependent(roi, e); err != nil {
			t.Fatal(err)
		}
		return s.DiskAccesses()
	}
	if a, b := coldDA(mono), coldDA(sharded); a != b {
		t.Fatalf("cold DA differs: 1 shard %d, 8 shards %d", a, b)
	}
}

// TestParallelExecuteStripsMatchesSerial: the opt-in strip worker pool
// must return exactly the serial result — same mesh, same fetched-record
// count, and on a cold pool the same disk accesses (shared pool makes
// each page a single backend read regardless of which worker gets there
// first).
func TestParallelExecuteStripsMatchesSerial(t *testing.T) {
	ds, _ := buildDataset(t, 9, "crater")
	s := newTestStore(t, ds)
	model, err := s.CostModel()
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.95, MaxY: 0.95},
		EMin: eAtPercentile(ds, 0.25), EMax: eAtPercentile(ds, 0.95), Axis: 1,
	}
	strips := model.PlanStrips(qp, 0)
	if len(strips) < 2 {
		t.Skipf("planner produced %d strips; need >= 2", len(strips))
	}

	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	serial, err := s.ExecuteStrips(qp, strips)
	if err != nil {
		t.Fatal(err)
	}
	serialDA := s.DiskAccesses()

	s.SetStripWorkers(4)
	defer s.SetStripWorkers(1)
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	par, err := s.ExecuteStrips(qp, strips)
	if err != nil {
		t.Fatal(err)
	}
	parDA := s.DiskAccesses()

	if parDA != serialDA {
		t.Errorf("cold DA differs: serial %d, parallel %d", serialDA, parDA)
	}
	if par.FetchedRecords != serial.FetchedRecords || par.Strips != serial.Strips {
		t.Fatalf("parallel fetched %d records over %d strips, serial %d over %d",
			par.FetchedRecords, par.Strips, serial.FetchedRecords, serial.Strips)
	}
	// The assemblers emit edge and triangle slices in map-iteration
	// order, so two runs over the same mesh may order them differently;
	// compare as sets.
	requireSameMesh(t, "parallel vs serial", par, serial)
}
