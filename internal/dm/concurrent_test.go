package dm

import (
	"sync"
	"testing"

	"dmesh/internal/geom"
)

// TestConcurrentQueries runs many viewpoint-independent and plane queries
// in parallel against one store: queries are read-only and the pager is
// synchronized, so results must match the serial answers.
func TestConcurrentQueries(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)

	type qcase struct {
		roi geom.Rect
		e   float64
	}
	cases := []qcase{
		{fullRect(), eAtPercentile(ds, 0.3)},
		{geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.6, MaxY: 0.6}, eAtPercentile(ds, 0.5)},
		{geom.Rect{MinX: 0.4, MinY: 0.2, MaxX: 0.9, MaxY: 0.8}, eAtPercentile(ds, 0.8)},
	}
	want := make([]int, len(cases))
	for i, c := range cases {
		res, err := s.ViewpointIndependent(c.roi, c.e)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(res.Vertices)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				c := cases[(g+iter)%len(cases)]
				res, err := s.ViewpointIndependent(c.roi, c.e)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Vertices) != want[(g+iter)%len(cases)] {
					t.Errorf("concurrent query returned %d vertices, want %d",
						len(res.Vertices), want[(g+iter)%len(cases)])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
