package dm

import (
	"container/heap"
	"sort"

	"dmesh/internal/geom"
	"dmesh/internal/storage/heapfile"
)

// connectBands is how many LOD bands the connectivity-clustered packing
// pass partitions the nodes into. Connection lists link similar-LOD
// nodes, so banding by LOD puts a node on pages with the nodes it can
// actually be connected to; 16 bands keeps each band's Hilbert run long
// enough for spatial clustering to still matter within it.
const connectBands = 16

// varSizer returns the realized on-disk lengths of one node's records
// under a variable layout: the overflow-record lengths in write (tail-
// first) order appended to ov, and the owner record's length. The greedy
// page fill consults it so its page-roll simulation tracks the actual
// encoded sizes — essential for the packed encoding, whose record
// length depends on the node's field values, not just its list length.
type varSizer func(n *Node, ov []int) (ovLens []int, recLen int)

// connectSizer sizes the plain variable encoding: exact-length records
// of 8-byte IDs, raw overflow chunks beyond the page-bounded inline
// capacity.
func connectSizer(n *Node, ov []int) ([]int, int) {
	ov = ov[:0]
	inline := connectInline(len(n.Conn))
	if rest := len(n.Conn) - inline; rest > 0 {
		for start := ((rest - 1) / connectOverflowFanout) * connectOverflowFanout; start >= 0; start -= connectOverflowFanout {
			end := start + connectOverflowFanout
			if end > rest {
				end = rest
			}
			ov = append(ov, 10+(end-start)*8)
		}
	}
	return ov, connectRecordLen(inline)
}

// packedSizer sizes the compressed encoding: the realized varint record
// length, with raw overflow chunks only for the rare list whose deltas
// overrun a page.
func packedSizer(n *Node, ov []int) ([]int, int) {
	ov = ov[:0]
	inline := packedSplit(n)
	if rest := len(n.Conn) - inline; rest > 0 {
		for start := ((rest - 1) / connectOverflowFanout) * connectOverflowFanout; start >= 0; start -= connectOverflowFanout {
			end := start + connectOverflowFanout
			if end > rest {
				end = rest
			}
			ov = append(ov, 10+(end-start)*8)
		}
	}
	return ov, packedRecordLen(n, inline, inline < len(n.Conn))
}

// connectOrder computes the physical record order of the connectivity-
// clustered layouts (LayoutConnect, LayoutPacked): Hilbert order within
// LOD bands (coarse bands first, matching query planes that always
// include the coarse levels), refined by a greedy page-fill that pulls a
// node's connection-list neighbors onto its page while they fit
// (Dillabaugh-style graph blocking: path-traversal neighbors share
// pages). Record sizes come from sizer, so the page-roll simulation is
// exact for either encoding. All tie-breaks are total orders on node ID,
// so the order — and therefore the on-disk layout — is deterministic.
func connectOrder(nodes []Node, sizer varSizer) []int64 {
	n := len(nodes)
	if n == 0 {
		return nil
	}

	// LOD bands by EHigh quantile, coarse first. EHigh rather than ELow so
	// the root band (infinite tops) is band 0; quantiles rather than value
	// ranges so bands are equally populated regardless of the error
	// distribution.
	byE := make([]int64, n)
	for i := range byE {
		byE[i] = int64(i)
	}
	sort.Slice(byE, func(a, b int) bool {
		ea, eb := nodes[byE[a]].EHigh, nodes[byE[b]].EHigh
		if ea != eb {
			return ea > eb
		}
		return byE[a] < byE[b]
	})
	band := make([]int32, n)
	for rank, id := range byE {
		band[id] = int32(rank * connectBands / n)
	}
	hk := make([]uint64, n)
	for i := range nodes {
		hk[i] = geom.HilbertKey(nodes[i].Pos.XY())
	}

	// The base order: (band, Hilbert key, ID) ascending. The greedy fill
	// below seeds each page from this order and prefers connection
	// neighbors by the same key, so deviations from the base order only
	// ever pull related records closer together.
	seed := make([]int64, n)
	copy(seed, byE)
	sort.Slice(seed, func(a, b int) bool {
		return connectLess(band, hk, seed[a], seed[b])
	})

	order := make([]int64, 0, n)
	placed := make([]bool, n)
	var sim heapfile.VarPageSim
	var ovScratch []int
	h := &connHeap{band: band, hk: hk}

	// place appends id to the order and simulates its on-disk records
	// (overflow chain tail-first, then the owner — exactly the write
	// sequence), reporting whether any of them started a fresh page.
	place := func(id int64) (newPage bool) {
		placed[id] = true
		order = append(order, id)
		var recLen int
		ovScratch, recLen = sizer(&nodes[id], ovScratch)
		for _, l := range ovScratch {
			if sim.Add(l) {
				newPage = true
			}
		}
		if sim.Add(recLen) {
			newPage = true
		}
		return newPage
	}
	pushNeighbors := func(id int64) {
		for _, c := range nodes[id].Conn {
			// Synthetic fixtures may carry out-of-range IDs; skip them, and
			// skip already-placed neighbors (the heap also re-checks on pop).
			if c >= 0 && c < int64(n) && !placed[c] {
				heap.Push(h, c)
			}
		}
	}

	cursor := 0
	for len(order) < n {
		// Next node: the best unplaced connection neighbor of the current
		// page's residents, else the next seed node (a fresh cluster).
		id := int64(-1)
		for h.Len() > 0 {
			if c := heap.Pop(h).(int64); !placed[c] {
				id = c
				break
			}
		}
		if id < 0 {
			for placed[seed[cursor]] {
				cursor++
			}
			id = seed[cursor]
		}
		if place(id) {
			// A fresh page: locality restarts from the node that now lives
			// on it, so candidates queued for the previous page are stale.
			h.ids = h.ids[:0]
		}
		pushNeighbors(id)
	}
	return order
}

// connectLess is the packing pass's total order: LOD band, then Hilbert
// key, then node ID.
func connectLess(band []int32, hk []uint64, a, b int64) bool {
	if band[a] != band[b] {
		return band[a] < band[b]
	}
	if hk[a] != hk[b] {
		return hk[a] < hk[b]
	}
	return a < b
}

// connHeap is a min-heap of candidate node IDs ordered by connectLess.
// Duplicate pushes are fine: pops re-check placement (lazy deletion).
type connHeap struct {
	band []int32
	hk   []uint64
	ids  []int64
}

func (h *connHeap) Len() int           { return len(h.ids) }
func (h *connHeap) Less(i, j int) bool { return connectLess(h.band, h.hk, h.ids[i], h.ids[j]) }
func (h *connHeap) Swap(i, j int)      { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *connHeap) Push(x interface{}) { h.ids = append(h.ids, x.(int64)) }
func (h *connHeap) Pop() interface{} {
	last := h.ids[len(h.ids)-1]
	h.ids = h.ids[:len(h.ids)-1]
	return last
}
