package dm

import (
	"fmt"
	"sort"

	"dmesh/internal/geom"
	"dmesh/internal/obs"
)

// TilePatch is a self-contained materialization of one cache tile: the
// answer to the uniform query Q(Rect, E) restricted to the tile footprint,
// stored in a form that lets StitchTiles assemble the answer to any ROI
// covered by a set of patches at the same E without touching the store
// again. It holds the live nodes (with their connection lists), the
// intra-tile mesh (edges and triangles whose endpoints all lie inside the
// tile), and the out-going connection pairs whose far endpoint is not a
// live node of this tile — the stitching seams.
//
// A patch is immutable once materialized; it may be shared by any number
// of concurrent readers.
type TilePatch struct {
	// Rect is the tile footprint in the (x, y) plane (boundary inclusive,
	// like every range query in the store).
	Rect geom.Rect
	// E is the discrete LOD the patch is materialized at.
	E float64
	// Nodes holds every node whose position lies inside Rect and whose
	// LOD interval contains E — exactly the live set of Q(Rect, E).
	Nodes map[int64]*Node

	// edges and tris are the intra-tile mesh: connection pairs (and the
	// 3-cliques they close) with both endpoints in Nodes. Sorted for
	// deterministic patch content.
	edges [][2]int64
	tris  []geom.Triangle
	// outPairs are connection pairs (a, c) with a in Nodes and c not: c
	// lies in a neighboring tile, or is not live at E. Stitching resolves
	// them against the combined live set.
	outPairs [][2]int64

	// FetchedRecords is how many node records the materializing range
	// query read (the I/O the patch cost, in records).
	FetchedRecords int
}

// Bytes estimates the resident size of the patch in bytes — the unit the
// tile cache budgets. The estimate is deterministic and intentionally
// simple: node header + connection IDs + mesh slices.
func (tp *TilePatch) Bytes() int {
	const nodeHeader = 96 // pm.Node fields + map overhead, rounded
	b := 0
	for _, n := range tp.Nodes {
		b += nodeHeader + 8*len(n.Conn)
	}
	b += 16 * len(tp.edges)
	b += 24 * len(tp.tris)
	b += 16 * len(tp.outPairs)
	return b
}

// NumEdges returns the intra-tile edge count (diagnostics).
func (tp *TilePatch) NumEdges() int { return len(tp.edges) }

// NumOutPairs returns the seam pair count (diagnostics).
func (tp *TilePatch) NumOutPairs() int { return len(tp.outPairs) }

// MaterializeTile answers Q(r, e) like ViewpointIndependent but returns
// the result as a TilePatch: live nodes plus the intra-tile mesh and the
// out-going connection pairs needed to stitch the patch against its
// neighbors. One range query, same I/O as the direct uniform query over r.
func (s *Store) MaterializeTile(r geom.Rect, e float64) (*TilePatch, error) {
	s.tr.Begin(obs.PhaseMaterialize)
	defer s.tr.End()
	fetchE := e
	if fetchE > s.maxE {
		fetchE = s.maxE
	}
	f := s.newFetcher()
	nf, err := f.fetchBox(geom.BoxFromRect(r, fetchE, fetchE))
	if err != nil {
		return nil, err
	}
	fetched := f.fetched()
	s.tr.Begin(obs.PhaseTriangulate)
	defer s.tr.End()
	live := make(map[int64]*Node, len(fetched))
	for id, n := range fetched {
		if n.Interval().Contains(e) {
			live[id] = n
		}
	}
	tp := &TilePatch{Rect: r, E: e, Nodes: live, FetchedRecords: nf}
	adj := make(map[int64][]int64, len(live))
	for id, n := range live {
		for _, c := range n.Conn {
			if _, ok := live[c]; ok {
				if c > id { // count each intra pair once
					tp.edges = append(tp.edges, [2]int64{id, c})
					adj[id] = append(adj[id], c)
					adj[c] = append(adj[c], id)
				}
			} else {
				tp.outPairs = append(tp.outPairs, [2]int64{id, c})
			}
		}
	}
	tp.tris = trianglesFromAdjacency(adj)
	sortEdgeSlice(tp.edges)
	sortEdgeSlice(tp.outPairs)
	sortTriSlice(tp.tris)
	return tp, nil
}

func sortEdgeSlice(es [][2]int64) {
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
}

func sortTriSlice(ts []geom.Triangle) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
}

// StitchTiles assembles the answer to Q(r, e) from tile patches whose
// footprints together cover r, all materialized at the same e. The result
// is exactly equal (as vertex/edge/triangle sets) to ViewpointIndependent
// (r, e) on the same store, with zero store I/O.
//
// The stitch walks connection lists across tile seams: interior tiles
// (footprint fully inside r) contribute their precomputed mesh wholesale;
// boundary tiles are clipped edge by edge; out-going pairs resolve
// against the combined live set, closing cross-tile triangles through the
// patch-mesh common-neighbor walk; a final sweep over nodes shared by
// several tiles closes the corner triangles whose every edge was
// bulk-merged from a different tile.
func StitchTiles(r geom.Rect, e float64, tiles []*TilePatch) (*Result, error) {
	return StitchTilesTraced(r, e, tiles, nil)
}

// StitchTilesTraced is StitchTiles emitting phase spans on tr (which may
// be nil): the whole stitch under one stitch span, with the seam
// resolution and corner sweep itemized as a seam-closure child.
func StitchTilesTraced(r geom.Rect, e float64, tiles []*TilePatch, tr *obs.Trace) (*Result, error) {
	tr.Begin(obs.PhaseStitch)
	defer tr.End()
	live := make(map[int64]*Node)
	shared := make(map[int64]struct{})
	for _, tp := range tiles {
		if tp == nil {
			return nil, fmt.Errorf("dm: stitch: nil tile patch")
		}
		if tp.E != e {
			return nil, fmt.Errorf("dm: stitch: tile %v materialized at LOD %g, want %g", tp.Rect, tp.E, e)
		}
		for id, n := range tp.Nodes {
			if !r.ContainsPoint(n.Pos.XY()) {
				continue // clip to the true ROI
			}
			if _, ok := live[id]; ok {
				shared[id] = struct{}{} // tile-boundary node, seen before
				continue
			}
			live[id] = n
		}
	}

	p := newPatchMesh()
	// Interior tiles: every node is inside r, so the precomputed mesh
	// merges without per-edge liveness checks or closure walks.
	for _, tp := range tiles {
		if !r.ContainsRect(tp.Rect) {
			continue
		}
		for _, ed := range tp.edges {
			if p.edgeCount[ed] == 0 { // duplicate on a shared tile boundary
				p.edgeCount[ed] = 1
				p.link(ed[0], ed[1])
				p.link(ed[1], ed[0])
			}
		}
		for _, tr := range tp.tris {
			p.tris[tr] = struct{}{}
		}
	}
	// addIfLive inserts one edge incrementally: both endpoints must have
	// survived the ROI clip, and the patch-mesh addEdge walk closes every
	// triangle the new edge completes against the mesh built so far.
	addIfLive := func(a, b int64) {
		if _, ok := live[a]; !ok {
			return
		}
		if _, ok := live[b]; !ok {
			return
		}
		k := edgeKey(a, b)
		if p.edgeCount[k] == 0 {
			p.inc(k)
		}
	}
	// Boundary tiles: the ROI edge cuts through them, so their intra
	// edges are re-checked against the clipped live set.
	for _, tp := range tiles {
		if r.ContainsRect(tp.Rect) {
			continue
		}
		for _, ed := range tp.edges {
			addIfLive(ed[0], ed[1])
		}
	}
	// Seams: out-going pairs of every tile, resolved against the combined
	// live set (each cross-tile pair is recorded by both sides; the edge
	// set dedups).
	tr.Begin(obs.PhaseSeam)
	for _, tp := range tiles {
		for _, pr := range tp.outPairs {
			addIfLive(pr[0], pr[1])
		}
	}
	// Corner sweep: a triangle whose three edges were each bulk-merged
	// from a different interior tile is in no tile's triangle set and no
	// incremental closure saw it. All its vertices then lie on tile
	// boundaries (each appears in at least two tiles), so walking the
	// shared nodes' neighborhoods finds every such clique.
	for u := range shared {
		for v := range p.adj[u] {
			p.forEachCommonNeighbor(u, v, func(w int64) {
				p.tris[canonTriangle(u, v, w)] = struct{}{}
			})
		}
	}
	tr.End()

	res := p.result(live)
	res.Strips = len(tiles)
	return res, nil
}
