package dm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"dmesh/internal/geom"
)

// Wire format for TilePatch — the unit a cluster shard ships to the
// router, which stitches the decoded patches with StitchTiles exactly as
// it would stitch locally materialized ones.
//
// The encoding is deterministic (nodes sorted by ID; edges, triangles and
// out-pairs are already kept sorted by MaterializeTile), so the same
// patch always serializes to the same bytes: responses are cachable and
// byte-comparable across shards. Layout (little endian):
//
//	magic "DMTP", version uvarint (1)
//	Rect (4 x float64 bits), E (float64 bits), FetchedRecords uvarint
//	node count uvarint, then per node (sorted by ID):
//	  ID uvarint; Pos x,y,z; ERaw; ELow; EHigh (float64 bits)
//	  Parent, Child1, Child2, Wing1, Wing2 (zigzag varints; pm.None = -1)
//	  MBR (4 x float64 bits)
//	  conn count uvarint, conn IDs as zigzag deltas vs the previous entry
//	edge count uvarint, then (a, b) zigzag varint pairs
//	triangle count uvarint, then (A, B, C) zigzag varint triples
//	out-pair count uvarint, then (a, c) zigzag varint pairs
//
// Floats travel as raw IEEE-754 bits, so every value — +Inf EHigh
// included — round-trips bit-exactly.
const (
	tileWireMagic   = "DMTP"
	tileWireVersion = 1
)

// EncodeTilePatch serializes tp into the deterministic binary wire form
// decodable with DecodeTilePatch.
func EncodeTilePatch(tp *TilePatch) []byte {
	buf := make([]byte, 0, 64+len(tp.Nodes)*96+16*len(tp.edges)+24*len(tp.tris)+16*len(tp.outPairs))
	buf = append(buf, tileWireMagic...)
	buf = binary.AppendUvarint(buf, tileWireVersion)
	buf = appendF64(buf, tp.Rect.MinX, tp.Rect.MinY, tp.Rect.MaxX, tp.Rect.MaxY, tp.E)
	buf = binary.AppendUvarint(buf, uint64(tp.FetchedRecords))

	ids := make([]int64, 0, len(tp.Nodes))
	for id := range tp.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		n := tp.Nodes[id]
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = appendF64(buf, n.Pos.X, n.Pos.Y, n.Pos.Z, n.ERaw, n.ELow, n.EHigh)
		for _, ref := range [...]int64{n.Parent, n.Child1, n.Child2, n.Wing1, n.Wing2} {
			buf = binary.AppendVarint(buf, ref)
		}
		buf = appendF64(buf, n.MBR.MinX, n.MBR.MinY, n.MBR.MaxX, n.MBR.MaxY)
		buf = binary.AppendUvarint(buf, uint64(len(n.Conn)))
		prev := int64(0)
		for _, c := range n.Conn { // sorted ascending: small positive deltas
			buf = binary.AppendVarint(buf, c-prev)
			prev = c
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(tp.edges)))
	for _, e := range tp.edges {
		buf = binary.AppendVarint(buf, e[0])
		buf = binary.AppendVarint(buf, e[1])
	}
	buf = binary.AppendUvarint(buf, uint64(len(tp.tris)))
	for _, t := range tp.tris {
		buf = binary.AppendVarint(buf, t.A)
		buf = binary.AppendVarint(buf, t.B)
		buf = binary.AppendVarint(buf, t.C)
	}
	buf = binary.AppendUvarint(buf, uint64(len(tp.outPairs)))
	for _, p := range tp.outPairs {
		buf = binary.AppendVarint(buf, p[0])
		buf = binary.AppendVarint(buf, p[1])
	}
	return buf
}

func appendF64(buf []byte, vs ...float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// tileWireReader is a bounds-checked cursor over an encoded patch. Every
// read error wraps ErrCorrupt; allocation sizes are validated against the
// bytes remaining, so truncated or hostile inputs fail cleanly instead of
// panicking or ballooning memory.
type tileWireReader struct {
	b   []byte
	off int
	err error
}

func (r *tileWireReader) corrupt(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("dm: tile patch wire: %s at offset %d: %w", what, r.off, ErrCorrupt)
	}
}

func (r *tileWireReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.corrupt("bad uvarint " + what)
		return 0
	}
	r.off += n
	return v
}

func (r *tileWireReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.corrupt("bad varint " + what)
		return 0
	}
	r.off += n
	return v
}

func (r *tileWireReader) f64(what string) float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.corrupt("truncated float " + what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// count reads a collection length and sanity-bounds it: each element
// occupies at least minBytes on the wire, so a count the remaining bytes
// cannot hold is corruption, not an allocation request.
func (r *tileWireReader) count(what string, minBytes int) int {
	v := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off)/uint64(minBytes) {
		r.corrupt("impossible count " + what)
		return 0
	}
	return int(v)
}

// DecodeTilePatch parses a patch encoded by EncodeTilePatch. The decode
// is panic-free on arbitrary input: corruption surfaces as an error
// wrapping ErrCorrupt.
func DecodeTilePatch(b []byte) (*TilePatch, error) {
	r := &tileWireReader{b: b}
	if len(b) < len(tileWireMagic) || string(b[:len(tileWireMagic)]) != tileWireMagic {
		return nil, fmt.Errorf("dm: tile patch wire: bad magic: %w", ErrCorrupt)
	}
	r.off = len(tileWireMagic)
	if v := r.uvarint("version"); r.err == nil && v != tileWireVersion {
		return nil, fmt.Errorf("dm: tile patch wire: unsupported version %d: %w", v, ErrCorrupt)
	}
	tp := &TilePatch{}
	tp.Rect.MinX, tp.Rect.MinY = r.f64("rect"), r.f64("rect")
	tp.Rect.MaxX, tp.Rect.MaxY = r.f64("rect"), r.f64("rect")
	tp.E = r.f64("e")
	tp.FetchedRecords = int(r.uvarint("fetched"))

	nNodes := r.count("nodes", 2)
	tp.Nodes = make(map[int64]*Node, nNodes)
	for i := 0; i < nNodes && r.err == nil; i++ {
		n := &Node{}
		id := int64(r.uvarint("node id"))
		n.ID = id
		n.Pos.X, n.Pos.Y, n.Pos.Z = r.f64("pos"), r.f64("pos"), r.f64("pos")
		n.ERaw, n.ELow, n.EHigh = r.f64("eraw"), r.f64("elow"), r.f64("ehigh")
		n.Parent = r.varint("parent")
		n.Child1, n.Child2 = r.varint("child"), r.varint("child")
		n.Wing1, n.Wing2 = r.varint("wing"), r.varint("wing")
		n.MBR.MinX, n.MBR.MinY = r.f64("mbr"), r.f64("mbr")
		n.MBR.MaxX, n.MBR.MaxY = r.f64("mbr"), r.f64("mbr")
		nConn := r.count("conn", 1)
		if nConn > 0 {
			n.Conn = make([]int64, 0, nConn)
			prev := int64(0)
			for j := 0; j < nConn && r.err == nil; j++ {
				prev += r.varint("conn delta")
				n.Conn = append(n.Conn, prev)
			}
		}
		if r.err == nil {
			if _, dup := tp.Nodes[id]; dup {
				r.corrupt("duplicate node id")
				break
			}
			tp.Nodes[id] = n
		}
	}

	nEdges := r.count("edges", 2)
	if nEdges > 0 {
		tp.edges = make([][2]int64, 0, nEdges)
		for i := 0; i < nEdges && r.err == nil; i++ {
			tp.edges = append(tp.edges, [2]int64{r.varint("edge"), r.varint("edge")})
		}
	}
	nTris := r.count("tris", 3)
	if nTris > 0 {
		tp.tris = make([]geom.Triangle, 0, nTris)
		for i := 0; i < nTris && r.err == nil; i++ {
			tp.tris = append(tp.tris, geom.Triangle{
				A: r.varint("tri"), B: r.varint("tri"), C: r.varint("tri"),
			})
		}
	}
	nOut := r.count("outpairs", 2)
	if nOut > 0 {
		tp.outPairs = make([][2]int64, 0, nOut)
		for i := 0; i < nOut && r.err == nil; i++ {
			tp.outPairs = append(tp.outPairs, [2]int64{r.varint("outpair"), r.varint("outpair")})
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("dm: tile patch wire: %d trailing bytes: %w", len(b)-r.off, ErrCorrupt)
	}
	return tp, nil
}
