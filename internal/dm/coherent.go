package dm

import (
	"errors"

	"dmesh/internal/costmodel"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
	"dmesh/internal/pm"
	"dmesh/internal/rtree"
)

var errFrameNeedsModel = errors.New("dm: FrameMultiBase requires a cost model")

// CoherentSession answers a sequence of temporally coherent queries —
// the frames of a terrain flyover — incrementally. It retains the
// previous frame's fetched node set (with LOD intervals) and its
// triangulation; for the next frame it subtracts the covered volume
// from the new query volume, issues narrow range queries only for the
// newly exposed fragments, evicts nodes whose vertical segments left
// the volume, and repairs the triangulation only around the nodes that
// changed, walking their connection lists. When the cost model predicts
// the delta plan to be no cheaper than starting over (the viewpoint
// jumped), the frame falls back to a full query and the state resets.
//
// The invariant that makes every frame exact is fetched-set equality:
// after each frame the retained map holds precisely the nodes whose
// stored segments intersect the frame's query volume — the same set a
// from-scratch query fetches — and the patched mesh equals the
// assembler's output over that set (same vertices, edges, triangles;
// slice orders differ).
//
// A CoherentSession wraps its own pager.Session, so FrameStats.DA is
// the frame's exact page-read count even while other sessions share the
// store. It is not safe for concurrent use; servers keep one per
// client.
type CoherentSession struct {
	sess  *Session
	model *costmodel.Model

	cover   []geom.Box      // query volume of the previous frame
	fetched map[int64]*Node // nodes whose segments intersect cover
	rep     map[int64]int64 // live representative per fetched node (-1: none)
	live    map[int64]*Node // the previous frame's cut
	mesh    *patchMesh
}

// FrameStats describes how one coherent frame was answered.
type FrameStats struct {
	// Full reports whether the frame ran as a full query (first frame,
	// Invalidate, or cost-model fallback) instead of a delta.
	Full bool
	// Strips is the number of query cubes in the frame's plan.
	Strips int
	// Fragments is the number of uncovered delta boxes the plan reduced
	// to (0 when the frame ran full).
	Fragments int
	// Fetched is the number of node records read this frame.
	Fetched int
	// Retained is the number of nodes carried over from the previous
	// frame; Evicted is the number dropped because their segments left
	// the query volume.
	Retained, Evicted int
	// PredFullDA and PredDeltaDA are the cost model's formula (1)
	// estimates that drove the delta-vs-full decision (zero on the
	// first frame, where there is nothing to compare).
	PredFullDA, PredDeltaDA float64
	// DA is the disk accesses the frame actually paid, attributed to
	// this session only.
	DA uint64
}

// NewCoherentSession returns a coherent view of the store. The cost
// model drives the delta-vs-full fallback; a nil model disables the
// fallback (frames after the first always run the delta plan).
func (s *Store) NewCoherentSession(model *costmodel.Model) *CoherentSession {
	return &CoherentSession{sess: s.NewSession(), model: model}
}

// Invalidate drops the retained state; the next frame runs as a full
// query. Call it when the store contents changed underneath.
func (c *CoherentSession) Invalidate() {
	c.cover = nil
	c.fetched = nil
	c.rep = nil
	c.live = nil
	c.mesh = nil
}

// DiskAccesses returns the total pages read by this session's frames.
func (c *CoherentSession) DiskAccesses() uint64 { return c.sess.DiskAccesses() }

// EnableTrace attaches (and returns) a phase tracer to the session. The
// trace is reset at the start of every frame — frames zero the session
// counters, so a span left open across Frame would watch its sampler go
// backwards — and after a frame returns it holds that frame's spans;
// read it before the next frame. Sessions are single-goroutine and so
// is the trace.
func (c *CoherentSession) EnableTrace() *obs.Trace {
	return c.sess.NewTrace()
}

// Trace returns the attached phase tracer (nil when tracing is off).
func (c *CoherentSession) Trace() *obs.Trace { return c.sess.tr }

// FrameUniform answers a viewpoint-independent frame Q(M, r, e),
// incrementally when the previous frame's volume overlaps. It matches
// Store.ViewpointIndependent exactly, including the fetch clamp to the
// dataset's maximum LOD.
func (c *CoherentSession) FrameUniform(r geom.Rect, e float64) (*Result, FrameStats, error) {
	fetchE := e
	if fetchE > c.sess.maxE {
		fetchE = c.sess.maxE
	}
	qp := geom.QueryPlane{R: r, EMin: e, EMax: e}
	return c.frame(qp, []geom.Box{geom.BoxFromRect(r, fetchE, fetchE)})
}

// Frame answers a single-base viewpoint-dependent frame, matching
// Store.SingleBase exactly.
func (c *CoherentSession) Frame(qp geom.QueryPlane) (*Result, FrameStats, error) {
	return c.frame(qp, []geom.Box{geom.BoxFromRect(qp.R, qp.EMin, qp.EMax)})
}

// FrameMultiBase answers a multi-base viewpoint-dependent frame: the
// cost model plans the strips (as Store.MultiBase would) and the delta
// is computed against their union. Requires a cost model.
func (c *CoherentSession) FrameMultiBase(qp geom.QueryPlane, maxStrips int) (*Result, FrameStats, error) {
	if c.model == nil {
		return nil, FrameStats{}, errFrameNeedsModel
	}
	return c.FrameStrips(qp, c.model.PlanStrips(qp, maxStrips))
}

// FrameStrips answers a viewpoint-dependent frame with an explicit cube
// plan, matching Store.ExecuteStrips on the same plan exactly.
func (c *CoherentSession) FrameStrips(qp geom.QueryPlane, strips []costmodel.Strip) (*Result, FrameStats, error) {
	target := make([]geom.Box, len(strips))
	for i, st := range strips {
		target[i] = st.Box()
	}
	return c.frame(qp, target)
}

// frame is the engine: decide delta vs full, reconcile the fetched set
// with the new target volume, then patch the mesh around the dirty
// nodes.
func (c *CoherentSession) frame(qp geom.QueryPlane, target []geom.Box) (*Result, FrameStats, error) {
	c.sess.ResetStats()
	// The counters just went to zero, so the trace restarts here: a span
	// held open across the reset would see its sampler go backwards.
	tr := c.sess.tr
	tr.Reset()
	tr.Begin(obs.PhaseQuery)
	st := FrameStats{Strips: len(target)}

	full := c.fetched == nil
	var frags []geom.Box
	if !full {
		tr.Begin(obs.PhasePlan)
		frags = rtree.DeltaBoxes(target, c.cover)
		st.Fragments = len(frags)
		if c.model != nil {
			useDelta, fullDA, deltaDA := c.model.DeltaDecision(target, frags)
			st.PredFullDA, st.PredDeltaDA = fullDA, deltaDA
			full = !useDelta
		}
		tr.End()
	}

	f := c.sess.newFetcher()
	f.track = true
	var evicted map[int64]*Node
	if full {
		st.Full = true
		st.Fragments = 0
		c.Invalidate()
		f.nodes = make(map[int64]*Node)
		c.mesh = newPatchMesh()
	} else {
		// Evict nodes whose stored segments no longer intersect the
		// target volume: the same closed-box intersection the R-tree
		// applies, so retention and (re)fetching agree bit for bit.
		evicted = make(map[int64]*Node)
		for id, n := range c.fetched {
			if !segmentIntersectsAny(segmentOf(&n.Node, c.sess.maxE), target) {
				evicted[id] = n
				delete(c.fetched, id)
			}
		}
		st.Evicted = len(evicted)
		st.Retained = len(c.fetched)
		f.nodes = c.fetched
	}
	fetchBoxes := target
	if !full {
		fetchBoxes = frags
	}
	for _, b := range fetchBoxes {
		nf, err := f.fetchBox(b)
		if err != nil {
			// The retained state may be mid-reconciliation; start clean.
			c.Invalidate()
			tr.End()
			return nil, st, err
		}
		st.Fetched += nf
	}
	c.fetched = f.fetched()

	tr.Begin(obs.PhaseTriangulate)
	newLive, newRep := liveAndReps(qp, c.fetched)

	// Dirty set: every node whose presence or live representative
	// changed. Any edge the frame adds or removes has a witness pair
	// with at least one dirty endpoint (a liveness flip always changes
	// the node's own rep, and a rep chain through an evicted or newly
	// fetched node changes the chain root's rep), so walking the dirty
	// nodes' connection lists visits every affected pair.
	dirty := make(map[int64]bool, len(f.added)+len(evicted))
	for _, id := range f.added {
		dirty[id] = true
	}
	for id := range evicted {
		dirty[id] = true
	}
	for id, r := range newRep {
		if !dirty[id] {
			if old, ok := c.rep[id]; ok && old != r {
				dirty[id] = true
			}
		}
	}

	oldRep := c.rep // nil on full frames: no old contributions to remove
	for a := range dirty {
		n := c.fetched[a]
		if n == nil {
			n = evicted[a]
		}
		for _, b := range n.Conn {
			if dirty[b] && b < a {
				continue // the pair is handled from b's side
			}
			oldE, oldOK := edgeContribution(oldRep, a, b)
			newE, newOK := edgeContribution(newRep, a, b)
			if oldOK == newOK && (!oldOK || oldE == newE) {
				continue
			}
			if oldOK {
				c.mesh.dec(oldE)
			}
			if newOK {
				c.mesh.inc(newE)
			}
		}
	}

	c.cover = append(c.cover[:0:0], target...)
	c.rep = newRep
	c.live = newLive

	res := c.mesh.result(newLive)
	tr.End() // triangulate
	res.FetchedRecords = st.Fetched
	res.Strips = len(fetchBoxes)
	st.DA = c.sess.DiskAccesses()
	tr.End() // root; after this the trace accounts for exactly st.DA
	return res, st, nil
}

// edgeContribution returns the lifted edge witnessed by the connection
// pair (a, b) under the given representative map, mirroring
// assembleLifted: both endpoints must be fetched (have reps) and lift
// to distinct live nodes. A nil map (full frame) contributes nothing.
func edgeContribution(rep map[int64]int64, a, b int64) ([2]int64, bool) {
	ra, ok := rep[a]
	if !ok || ra < 0 {
		return [2]int64{}, false
	}
	rb, ok := rep[b]
	if !ok || rb < 0 || rb == ra {
		return [2]int64{}, false
	}
	return edgeKey(ra, rb), true
}

// liveAndReps computes the frame's cut and every fetched node's live
// representative, with exactly assemblePlane/assembleLifted semantics:
// live nodes are those whose interval contains the plane's requirement
// at their position; a non-live node's rep walks parent pointers while
// they stay inside the fetched set. On a degenerate plane (uniform LOD)
// nodes represent only themselves.
func liveAndReps(qp geom.QueryPlane, fetched map[int64]*Node) (map[int64]*Node, map[int64]int64) {
	live := make(map[int64]*Node, len(fetched))
	for id, n := range fetched {
		if n.Interval().Contains(qp.EAt(n.Pos.X, n.Pos.Y)) {
			live[id] = n
		}
	}
	rep := make(map[int64]int64, len(fetched))
	if qp.EMin == qp.EMax {
		for id := range fetched {
			if _, ok := live[id]; ok {
				rep[id] = id
			} else {
				rep[id] = -1
			}
		}
		return live, rep
	}
	// The memo cache may pick up chain nodes outside the fetched set
	// (their rep is -1); rep itself must hold exactly the fetched IDs,
	// because membership in it encodes membership in the frame.
	const unresolved = int64(-2)
	cache := make(map[int64]int64, len(fetched))
	var walk func(id int64) int64
	walk = func(id int64) int64 {
		if r, ok := cache[id]; ok {
			return r
		}
		cache[id] = unresolved // cycle guard; overwritten below
		var r int64 = -1
		if _, ok := live[id]; ok {
			r = id
		} else if n, ok := fetched[id]; ok && n.Parent != pm.None {
			r = walk(n.Parent)
		}
		cache[id] = r
		return r
	}
	for id := range fetched {
		rep[id] = walk(id)
	}
	return live, rep
}

func segmentIntersectsAny(seg geom.Box, boxes []geom.Box) bool {
	for _, b := range boxes {
		if seg.Intersects(b) {
			return true
		}
	}
	return false
}
