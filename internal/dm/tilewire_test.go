package dm

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"dmesh/internal/geom"
)

func materializeWirePatches(t *testing.T, s *Store, r geom.Rect, e float64, level int) []*TilePatch {
	t.Helper()
	var tiles []*TilePatch
	for _, tr := range tileCover(s, r, level) {
		tp, err := s.MaterializeTile(tr, e)
		if err != nil {
			t.Fatalf("materialize %v: %v", tr, err)
		}
		tiles = append(tiles, tp)
	}
	return tiles
}

func requireSamePatch(t *testing.T, label string, got, want *TilePatch) {
	t.Helper()
	if got.Rect != want.Rect || got.E != want.E || got.FetchedRecords != want.FetchedRecords {
		t.Fatalf("%s: header mismatch: got (%v, %g, %d) want (%v, %g, %d)",
			label, got.Rect, got.E, got.FetchedRecords, want.Rect, want.E, want.FetchedRecords)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: %d nodes, want %d", label, len(got.Nodes), len(want.Nodes))
	}
	for id, wn := range want.Nodes {
		gn, ok := got.Nodes[id]
		if !ok {
			t.Fatalf("%s: node %d missing", label, id)
		}
		g, w := *gn, *wn
		if len(g.Conn) == 0 && len(w.Conn) == 0 { // nil vs empty is not a wire difference
			g.Conn, w.Conn = nil, nil
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: node %d mismatch:\n got %+v\nwant %+v", label, id, g, w)
		}
	}
	if !reflect.DeepEqual(got.edges, want.edges) {
		t.Fatalf("%s: edges mismatch", label)
	}
	if !reflect.DeepEqual(got.tris, want.tris) {
		t.Fatalf("%s: triangles mismatch", label)
	}
	if !reflect.DeepEqual(got.outPairs, want.outPairs) {
		t.Fatalf("%s: outPairs mismatch", label)
	}
}

// TestTilePatchWireRoundTrip: every materialized patch round-trips the
// wire codec field-exactly (EHigh = +Inf on roots included), and the
// encoding is deterministic — encode(decode(encode(p))) == encode(p).
func TestTilePatchWireRoundTrip(t *testing.T) {
	ds, _ := buildDataset(t, 8, "highland")
	s := newTestStore(t, ds)
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	for _, pct := range []float64{0.5, 0.9, 0.995} {
		e := eAtPercentile(ds, pct)
		for i, tp := range materializeWirePatches(t, s, r, e, 2) {
			label := fmt.Sprintf("pct %g tile %d", pct, i)
			enc := EncodeTilePatch(tp)
			dec, err := DecodeTilePatch(enc)
			if err != nil {
				t.Fatalf("%s: decode: %v", label, err)
			}
			requireSamePatch(t, label, dec, tp)
			if !bytes.Equal(EncodeTilePatch(dec), enc) {
				t.Fatalf("%s: re-encode differs from original encoding", label)
			}
		}
	}
	// The coarsest query keeps root nodes live; their EHigh is +Inf and
	// must survive the trip bit-exactly.
	tp, err := s.MaterializeTile(r, s.MaxE()*2)
	if err != nil {
		t.Fatal(err)
	}
	sawInf := false
	for _, n := range tp.Nodes {
		if math.IsInf(n.EHigh, 1) {
			sawInf = true
		}
	}
	if !sawInf {
		t.Fatal("expected an infinite EHigh in the root patch")
	}
	dec, err := DecodeTilePatch(EncodeTilePatch(tp))
	if err != nil {
		t.Fatal(err)
	}
	requireSamePatch(t, "root patch", dec, tp)
}

// TestStitchDecodedTiles is the cluster's correctness linchpin: stitching
// decoded wire patches gives the same mesh as stitching the originals —
// and therefore the same mesh as the direct single-node query.
func TestStitchDecodedTiles(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds, _ := buildDataset(t, 8, name)
		s := newTestStore(t, ds)
		r := geom.Rect{MinX: 0.15, MinY: 0.2, MaxX: 0.8, MaxY: 0.7}
		e := eAtPercentile(ds, 0.9)
		tiles := materializeWirePatches(t, s, r, e, 2)
		decoded := make([]*TilePatch, len(tiles))
		for i, tp := range tiles {
			dec, err := DecodeTilePatch(EncodeTilePatch(tp))
			if err != nil {
				t.Fatalf("%s: tile %d: %v", name, i, err)
			}
			decoded[i] = dec
		}
		got, err := StitchTiles(r, e, decoded)
		if err != nil {
			t.Fatalf("%s: stitch decoded: %v", name, err)
		}
		want, err := s.ViewpointIndependent(r, e)
		if err != nil {
			t.Fatal(err)
		}
		requireSameMesh(t, name+" decoded", got, want)
	}
}

// TestTilePatchWireCorruption: truncations, bit flips, and malicious
// counts all fail with ErrCorrupt and never panic.
func TestTilePatchWireCorruption(t *testing.T) {
	ds, _ := buildDataset(t, 7, "highland")
	s := newTestStore(t, ds)
	tp, err := s.MaterializeTile(geom.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5}, eAtPercentile(ds, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeTilePatch(tp)

	requireCorrupt := func(label string, b []byte) {
		t.Helper()
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("%s: decode panicked: %v", label, p)
			}
		}()
		if _, err := DecodeTilePatch(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", label, err)
		}
	}

	requireCorrupt("empty", nil)
	requireCorrupt("bad magic", append([]byte("XXXX"), enc[4:]...))
	badVer := append([]byte(nil), enc...)
	badVer[4] = 99
	requireCorrupt("bad version", badVer)
	// Every truncation point must fail cleanly (a prefix can't be a valid
	// encoding: the decoder requires exhausting the input exactly).
	for _, cut := range []int{5, 12, 44, 60, len(enc) / 3, len(enc) / 2, len(enc) - 1} {
		if cut < len(enc) {
			requireCorrupt(fmt.Sprintf("truncated at %d", cut), enc[:cut])
		}
	}
	// Trailing garbage is corruption too.
	requireCorrupt("trailing bytes", append(append([]byte(nil), enc...), 0xff))
	// Blow up the node count: the remaining bytes can't hold it.
	huge := append([]byte(nil), enc[:53]...) // magic+ver+rect+e = 4+1+40+8 = 53
	huge = append(huge, 0x01)                // fetched = 1
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f)
	requireCorrupt("impossible node count", huge)
}
