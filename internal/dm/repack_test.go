package dm

import (
	"errors"
	"sort"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/storage/faultfs"
	"dmesh/internal/storage/pager"
)

func buildDatasetOnly(t testing.TB, size int, name string) *Dataset {
	t.Helper()
	ds, _ := buildDataset(t, size, name)
	return ds
}

func memBackends() [4]pager.Backend {
	return [4]pager.Backend{
		pager.NewMemBackend(), pager.NewMemBackend(),
		pager.NewMemBackend(), pager.NewMemBackend(),
	}
}

func sortedEdgeSet(es [][2]int64) [][2]int64 {
	out := append([][2]int64(nil), es...)
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func sortedTriSet(ts []geom.Triangle) []geom.Triangle {
	out := make([]geom.Triangle, len(ts))
	for i, tr := range ts {
		out[i] = tr.Canon()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
	return out
}

// requireSameResult asserts two query results describe the same mesh:
// identical vertex sets (IDs and positions), identical edge sets, and
// identical triangle sets. Slice order is not compared — it depends on
// map iteration — but the sets must match element for element.
func requireSameResult(t *testing.T, ctx string, want, got *Result) {
	t.Helper()
	if len(got.Vertices) != len(want.Vertices) {
		t.Fatalf("%s: %d vertices, want %d", ctx, len(got.Vertices), len(want.Vertices))
	}
	for id, p := range want.Vertices {
		q, ok := got.Vertices[id]
		if !ok {
			t.Fatalf("%s: vertex %d missing", ctx, id)
		}
		if q != p {
			t.Fatalf("%s: vertex %d at %v, want %v", ctx, id, q, p)
		}
	}
	we, ge := sortedEdgeSet(want.Edges), sortedEdgeSet(got.Edges)
	if len(we) != len(ge) {
		t.Fatalf("%s: %d edges, want %d", ctx, len(ge), len(we))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("%s: edge[%d] = %v, want %v", ctx, i, ge[i], we[i])
		}
	}
	wt, gt := sortedTriSet(want.Triangles), sortedTriSet(got.Triangles)
	if len(wt) != len(gt) {
		t.Fatalf("%s: %d triangles, want %d", ctx, len(gt), len(wt))
	}
	for i := range wt {
		if wt[i] != gt[i] {
			t.Fatalf("%s: triangle[%d] = %v, want %v", ctx, i, gt[i], wt[i])
		}
	}
}

// TestRepackAnswersIdentically is the repack correctness property: a
// store repacked into ANY layout answers every query kind exactly like
// its source — uniform (several ROIs and LODs), single-base, explicit
// multi-base strip plans, radial, temporally coherent frame sequences,
// and tile materialization + stitching — on both datasets. Plans come
// from the SOURCE store's cost model and run on both stores explicitly:
// each layout's own R*-tree yields its own model and possibly different
// plans, which legitimately fetch different (equally correct) record
// sets; the property under test is physical-layout transparency for the
// same logical query.
func TestRepackAnswersIdentically(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds := inflateConn(buildDatasetOnly(t, 9, name), overflowLengths...)
		src, err := BuildStore(ds, StorePools{Layout: LayoutSTR})
		if err != nil {
			t.Fatal(err)
		}
		model, err := src.CostModel()
		if err != nil {
			t.Fatal(err)
		}
		rois := []geom.Rect{
			fullRect(),
			{MinX: 0.2, MinY: 0.3, MaxX: 0.7, MaxY: 0.9},
			{MinX: 0.45, MinY: 0.45, MaxX: 0.55, MaxY: 0.55},
		}
		qp := geom.QueryPlane{
			R:    geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9},
			EMin: eAtPercentile(ds, 0.2), EMax: eAtPercentile(ds, 0.85), Axis: 1,
		}
		strips := model.PlanStrips(qp, 0)
		viewer := geom.Point2{X: 0.5, Y: 0.05}
		scale := eAtPercentile(ds, 0.6) / 0.1

		for _, target := range allLayouts {
			ctx := name + "/" + target.String()
			rp, err := RepackOnBackends(src, StorePools{Layout: target}, memBackends())
			if err != nil {
				t.Fatalf("%s: repack: %v", ctx, err)
			}
			if rp.NumNodes() != src.NumNodes() {
				t.Fatalf("%s: repacked %d nodes, want %d", ctx, rp.NumNodes(), src.NumNodes())
			}

			// Uniform ROI x LOD grid.
			for _, roi := range rois {
				for _, pct := range []float64{0.25, 0.6, 0.9} {
					e := eAtPercentile(ds, pct)
					want, err := src.ViewpointIndependent(roi, e)
					if err != nil {
						t.Fatal(err)
					}
					got, err := rp.ViewpointIndependent(roi, e)
					if err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					requireSameResult(t, ctx+" uniform", want, got)
				}
			}

			// Single-base.
			want, err := src.SingleBase(qp)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rp.SingleBase(qp)
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			requireSameResult(t, ctx+" single-base", want, got)

			// Multi-base, same explicit plan on both stores.
			want, err = src.ExecuteStrips(qp, strips)
			if err != nil {
				t.Fatal(err)
			}
			got, err = rp.ExecuteStrips(qp, strips)
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			requireSameResult(t, ctx+" strips", want, got)

			// Radial.
			want, err = src.Radial(rois[1], viewer, scale, 4)
			if err != nil {
				t.Fatal(err)
			}
			got, err = rp.Radial(rois[1], viewer, scale, 4)
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			requireSameResult(t, ctx+" radial", want, got)

			// Coherent frame sequence (a small pan), frame by frame.
			csSrc := src.NewCoherentSession(nil)
			csRp := rp.NewCoherentSession(nil)
			e := eAtPercentile(ds, 0.5)
			for f := 0; f < 4; f++ {
				roi := geom.Rect{
					MinX: 0.1 + 0.05*float64(f), MinY: 0.2,
					MaxX: 0.6 + 0.05*float64(f), MaxY: 0.7,
				}
				want, _, err := csSrc.FrameUniform(roi, e)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := csRp.FrameUniform(roi, e)
				if err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				requireSameResult(t, ctx+" coherent", want, got)
			}

			// Tile materialization + stitching over a 2x2 grid.
			quads := []geom.Rect{
				{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5},
				{MinX: 0.5, MinY: 0, MaxX: 1, MaxY: 0.5},
				{MinX: 0, MinY: 0.5, MaxX: 0.5, MaxY: 1},
				{MinX: 0.5, MinY: 0.5, MaxX: 1, MaxY: 1},
			}
			stitchROI := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
			var srcTiles, rpTiles []*TilePatch
			for _, q := range quads {
				tp, err := src.MaterializeTile(q, e)
				if err != nil {
					t.Fatal(err)
				}
				srcTiles = append(srcTiles, tp)
				tp, err = rp.MaterializeTile(q, e)
				if err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				rpTiles = append(rpTiles, tp)
			}
			want, err = StitchTiles(stitchROI, e, srcTiles)
			if err != nil {
				t.Fatal(err)
			}
			got, err = StitchTiles(stitchROI, e, rpTiles)
			if err != nil {
				t.Fatalf("%s: %v", ctx, err)
			}
			requireSameResult(t, ctx+" tiles", want, got)
		}
	}
}

// TestRepackPersisted runs the offline pass end to end through the
// directory API: build a store on disk, Repack it to a second directory,
// reopen both, and compare answers.
func TestRepackPersisted(t *testing.T) {
	ds := inflateConn(buildDatasetOnly(t, 8, "highland"), overflowLengths...)
	srcDir, outDir := t.TempDir(), t.TempDir()+"/repacked"
	src, err := BuildStoreAt(ds, StorePools{Layout: LayoutSTR}, srcDir)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Repack(src, StorePools{Layout: LayoutConnect}, outDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(outDir, StorePools{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Layout() != LayoutConnect {
		t.Fatalf("repacked store reopened as %v, want connect", re.Layout())
	}
	e := eAtPercentile(ds, 0.5)
	want, err := src.ViewpointIndependent(fullRect(), e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.ViewpointIndependent(fullRect(), e)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "reopened repacked store", want, got)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	// Repacking over an existing store directory must refuse.
	src2, err := OpenStore(srcDir, StorePools{})
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()
	if _, err := Repack(src2, StorePools{Layout: LayoutHilbert}, outDir); err == nil {
		t.Fatal("repack over an existing store directory must fail")
	}
}

// TestRepackFaultInjection covers the failure paths of the offline pass
// and of queries against a faulted connect store: injected read faults
// surface as errors (never panics, never silently wrong answers), and a
// healed store answers correctly again.
func TestRepackFaultInjection(t *testing.T) {
	ds := inflateConn(buildDatasetOnly(t, 8, "crater"), overflowLengths...)

	// 1. Repack from a faulted source errors cleanly.
	var srcFaults []*faultfs.Backend
	src, err := BuildStoreOnBackends(ds, StorePools{
		Layout: LayoutSTR,
		WrapBackend: func(b pager.Backend) pager.Backend {
			fb := faultfs.Wrap(b)
			srcFaults = append(srcFaults, fb)
			return fb
		},
	}, memBackends())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.DropCaches(); err != nil {
		t.Fatal(err)
	}
	for _, fb := range srcFaults {
		fb.SetSchedule(faultfs.Read, faultfs.Schedule{Every: 7})
	}
	if _, err := RepackOnBackends(src, StorePools{Layout: LayoutConnect}, memBackends()); err == nil {
		t.Fatal("repack from a faulted source must fail")
	} else if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("repack error should wrap the injected fault, got: %v", err)
	}
	for _, fb := range srcFaults {
		fb.Heal()
	}

	// 2. A healed source repacks; a faulted repacked connect store
	// errors on queries, then answers correctly after healing.
	var rpFaults []*faultfs.Backend
	rp, err := RepackOnBackends(src, StorePools{
		Layout: LayoutConnect,
		WrapBackend: func(b pager.Backend) pager.Backend {
			fb := faultfs.Wrap(b)
			rpFaults = append(rpFaults, fb)
			return fb
		},
	}, memBackends())
	if err != nil {
		t.Fatal(err)
	}
	e := eAtPercentile(ds, 0.5)
	want, err := src.ViewpointIndependent(fullRect(), e)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.DropCaches(); err != nil {
		t.Fatal(err)
	}
	for _, fb := range rpFaults {
		fb.SetSchedule(faultfs.Read, faultfs.Schedule{Every: 5})
	}
	if _, err := rp.ViewpointIndependent(fullRect(), e); err == nil {
		t.Fatal("query against a faulted store must fail")
	} else if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("query error should wrap the injected fault, got: %v", err)
	}
	for _, fb := range rpFaults {
		fb.Heal()
	}
	if err := rp.DropCaches(); err != nil {
		t.Fatal(err)
	}
	got, err := rp.ViewpointIndependent(fullRect(), e)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "healed repacked store", want, got)
}
