package dm

import (
	"bytes"
	"errors"
	"testing"

	"dmesh/internal/geom"
)

// FuzzTilePatchDecode feeds arbitrary bytes to the tile-patch wire
// decoder — the exact bytes a cluster router reads off a possibly
// truncating or corrupting shard connection. It must never panic, and
// every rejection must wrap ErrCorrupt so the router's failover
// classifies it as a failed attempt.
//
// The seed corpus is a real encoded patch cut at every byte offset, so
// the fuzzer starts at every field boundary of the format (header,
// counts, node records, overflow chains, checksum) rather than having
// to discover the framing from scratch.
func FuzzTilePatchDecode(f *testing.F) {
	ds, _ := buildDataset(f, 17, "highland")
	s := newTestStore(f, ds)
	tp, err := s.MaterializeTile(geom.Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.7, MaxY: 0.8}, eAtPercentile(ds, 0.9))
	if err != nil {
		f.Fatal(err)
	}
	enc := EncodeTilePatch(tp)
	for i := 0; i <= len(enc); i++ {
		f.Add(enc[:i:i])
	}
	// Trailing garbage after a complete patch must be rejected too.
	f.Add(append(append([]byte{}, enc...), 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeTilePatch(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		// A decode that succeeds must be canonically re-encodable: the
		// input may use non-canonical varint spellings, but re-encoding
		// the decoded patch must reach a fixed point (decode(enc(p))
		// re-encodes to enc(p) bit for bit).
		re := EncodeTilePatch(got)
		got2, err := DecodeTilePatch(re)
		if err != nil {
			t.Fatalf("re-encoded patch does not decode: %v", err)
		}
		if !bytes.Equal(EncodeTilePatch(got2), re) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
