package dm

import (
	"sort"
	"testing"

	"dmesh/internal/costmodel"
	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
	"dmesh/internal/mesh"
	"dmesh/internal/simplify"
)

func buildDataset(t testing.TB, size int, dataset string) (*Dataset, *simplify.Sequence) {
	t.Helper()
	g, err := heightfield.Named(dataset, size, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.FromGrid(g)
	seq, err := simplify.Run(m, simplify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := FromSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	return ds, seq
}

func newTestStore(t testing.TB, ds *Dataset) *Store {
	t.Helper()
	s, err := BuildStore(ds, StorePools{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fullRect() geom.Rect { return geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2} }

// eAtPercentile returns the p-th percentile of internal-node ELow values.
func eAtPercentile(ds *Dataset, p float64) float64 {
	var es []float64
	for i := range ds.Tree.Nodes {
		if !ds.Tree.Nodes[i].IsLeaf() {
			es = append(es, ds.Tree.Nodes[i].ELow)
		}
	}
	sort.Float64s(es)
	return es[int(p*float64(len(es)-1))]
}

func sortedIDs(m map[int64]geom.Point3) []int64 {
	out := make([]int64, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	ds, _ := buildDataset(t, 6, "highland")
	buf := make([]byte, RecordSize)
	for i := range ds.Tree.Nodes {
		n := ds.Node(int64(i))
		if len(n.Conn) > ConnInline {
			continue // overflow covered by the store tests
		}
		encodeRecord(&n, noOverflow, buf)
		got, total, ref := decodeRecordHeader(buf, nil)
		if total != len(n.Conn) || ref != noOverflow {
			t.Fatalf("round trip header mismatch for node %d", i)
		}
		if got.ID != n.ID || got.Pos != n.Pos || got.ELow != n.ELow || got.EHigh != n.EHigh ||
			got.Parent != n.Parent || got.Child1 != n.Child1 || got.Child2 != n.Child2 ||
			got.Wing1 != n.Wing1 || got.Wing2 != n.Wing2 {
			t.Fatalf("round trip mismatch for node %d", i)
		}
		for k := range n.Conn {
			if got.Conn[k] != n.Conn[k] {
				t.Fatalf("conn mismatch for node %d", i)
			}
		}
	}
}

func TestOverflowRoundTrip(t *testing.T) {
	ids := []int64{5, 9, 13}
	buf := make([]byte, OverflowRecordSize)
	encodeOverflow(ids, 42, buf)
	got, next := decodeOverflow(buf)
	if next != 42 || len(got) != 3 || got[0] != 5 || got[2] != 13 {
		t.Fatalf("overflow round trip: %v next %d", got, next)
	}
}

func TestStoreFetchByID(t *testing.T) {
	ds, _ := buildDataset(t, 8, "highland")
	s := newTestStore(t, ds)
	for _, id := range []int64{0, 7, int64(len(ds.Tree.Nodes) - 1)} {
		n, err := s.FetchByID(id)
		if err != nil {
			t.Fatal(err)
		}
		want := ds.Node(id)
		if n.ID != want.ID || n.Pos != want.Pos || n.ELow != want.ELow || n.EHigh != want.EHigh ||
			n.Parent != want.Parent {
			t.Fatalf("node %d mismatch", id)
		}
		if len(n.Conn) != len(want.Conn) {
			t.Fatalf("node %d conn length %d, want %d (overflow chain broken?)", id, len(n.Conn), len(want.Conn))
		}
		for i := range n.Conn {
			if n.Conn[i] != want.Conn[i] {
				t.Fatalf("node %d conn[%d] mismatch", id, i)
			}
		}
	}
}

// The headline correctness claim: for a uniform-LOD query over the whole
// terrain, the Direct Mesh reconstruction (interval cut + connection
// lists) is EXACTLY the mesh the collapse sequence defines at that LOD.
func TestViewpointIndependentExactAgainstReplay(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds, seq := buildDataset(t, 9, name)
		// The anchor must hold for every physical layout, plus a store
		// produced by the offline repack pass — page placement can never
		// change a reconstruction.
		var stores []*Store
		var labels []string
		for _, l := range allLayouts {
			s, err := BuildStore(ds, StorePools{Layout: l})
			if err != nil {
				t.Fatal(err)
			}
			stores = append(stores, s)
			labels = append(labels, l.String())
		}
		for _, target := range []Layout{LayoutConnect, LayoutPacked} {
			rp, err := RepackOnBackends(stores[0], StorePools{Layout: target}, memBackends())
			if err != nil {
				t.Fatal(err)
			}
			stores = append(stores, rp)
			labels = append(labels, "repacked-"+target.String())
		}
		for si, s := range stores {
			name := name + "/" + labels[si]
			checkExactAgainstReplay(t, name, ds, seq, s)
		}
	}
}

// checkExactAgainstReplay asserts the store's reconstruction at several
// LODs equals the collapse-sequence replay exactly — the correctness
// anchor for the whole multiresolution structure.
func checkExactAgainstReplay(t *testing.T, name string, ds *Dataset, seq *simplify.Sequence, s *Store) {
	t.Helper()
	{
		for _, pct := range []float64{0, 0.25, 0.5, 0.75, 0.95} {
			var e float64
			if pct > 0 {
				e = eAtPercentile(ds, pct)
			}
			res, err := s.ViewpointIndependent(fullRect(), e)
			if err != nil {
				t.Fatal(err)
			}
			step := seq.StepForLOD(e)
			truth, err := seq.AdjacencyAtStep(step)
			if err != nil {
				t.Fatal(err)
			}
			// Vertex sets must match.
			if len(res.Vertices) != len(truth) {
				t.Fatalf("%s e=%g: %d vertices, replay has %d", name, e, len(res.Vertices), len(truth))
			}
			for id := range res.Vertices {
				if _, ok := truth[id]; !ok {
					t.Fatalf("%s e=%g: vertex %d not in replay", name, e, id)
				}
			}
			// Edge sets must match.
			truthEdges := make(map[[2]int64]bool)
			for v, ns := range truth {
				for _, u := range ns {
					truthEdges[edgeKey(v, u)] = true
				}
			}
			if len(res.Edges) != len(truthEdges) {
				t.Fatalf("%s e=%g: %d edges, replay has %d", name, e, len(res.Edges), len(truthEdges))
			}
			for _, ed := range res.Edges {
				if !truthEdges[ed] {
					t.Fatalf("%s e=%g: edge %v not in replay", name, e, ed)
				}
			}
		}
	}
}

func TestViewpointIndependentROI(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	e := eAtPercentile(ds, 0.4)
	roi := geom.Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.75, MaxY: 0.75}
	res, err := s.ViewpointIndependent(roi, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) == 0 {
		t.Fatal("empty ROI result")
	}
	// Every vertex in the ROI, live at e.
	for id, pos := range res.Vertices {
		if !roi.ContainsPoint(pos.XY()) {
			t.Fatalf("vertex %d outside ROI", id)
		}
		if !ds.Tree.Nodes[id].Interval().Contains(e) {
			t.Fatalf("vertex %d not live at e", id)
		}
	}
	// And the result is exactly the full-domain cut restricted to the ROI.
	want := 0
	for _, id := range ds.UniformCut(e) {
		if roi.ContainsPoint(ds.Tree.Nodes[id].Pos.XY()) {
			want++
		}
	}
	if len(res.Vertices) != want {
		t.Fatalf("ROI cut has %d vertices, want %d", len(res.Vertices), want)
	}
}

func TestTrianglesTileTheDomain(t *testing.T) {
	// At any uniform LOD the reconstructed triangles must tile the mesh
	// footprint: sum of projected areas equals the full-resolution mesh's
	// projected area (the unit square), within tolerance for boundary
	// simplification.
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	for _, pct := range []float64{0, 0.3, 0.6, 0.9} {
		var e float64
		if pct > 0 {
			e = eAtPercentile(ds, pct)
		}
		res, err := s.ViewpointIndependent(fullRect(), e)
		if err != nil {
			t.Fatal(err)
		}
		var area float64
		for _, tri := range res.Triangles {
			a := res.Vertices[tri.A].XY()
			b := res.Vertices[tri.B].XY()
			c := res.Vertices[tri.C].XY()
			cr := b.Sub(a).Cross(c.Sub(a))
			if cr < 0 {
				cr = -cr
			}
			area += cr / 2
		}
		if area < 0.90 || area > 1.10 {
			t.Fatalf("pct=%g: projected triangle area %g, want ~1", pct, area)
		}
	}
}

func TestSingleBaseDegeneratePlaneEqualsUniform(t *testing.T) {
	ds, _ := buildDataset(t, 8, "highland")
	s := newTestStore(t, ds)
	e := eAtPercentile(ds, 0.5)
	qp := geom.QueryPlane{R: fullRect(), EMin: e, EMax: e, Axis: 1}
	sb, err := s.SingleBase(qp)
	if err != nil {
		t.Fatal(err)
	}
	vi, err := s.ViewpointIndependent(fullRect(), e)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sortedIDs(sb.Vertices), sortedIDs(vi.Vertices)
	if len(a) != len(b) {
		t.Fatalf("degenerate single-base %d vertices, uniform %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("degenerate single-base differs from uniform query")
		}
	}
}

func TestSingleBasePlaneLiveSet(t *testing.T) {
	ds, _ := buildDataset(t, 9, "crater")
	s := newTestStore(t, ds)
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9},
		EMin: eAtPercentile(ds, 0.2), EMax: eAtPercentile(ds, 0.85), Axis: 1,
	}
	res, err := s.SingleBase(qp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) == 0 {
		t.Fatal("empty single-base result")
	}
	// The live set is exactly the per-position interval rule.
	want := make(map[int64]bool)
	for i := range ds.Tree.Nodes {
		n := &ds.Tree.Nodes[i]
		if !qp.R.ContainsPoint(n.Pos.XY()) {
			continue
		}
		if n.Interval().Contains(qp.EAt(n.Pos.X, n.Pos.Y)) {
			want[int64(i)] = true
		}
	}
	if len(res.Vertices) != len(want) {
		t.Fatalf("live set %d, want %d", len(res.Vertices), len(want))
	}
	for id := range res.Vertices {
		if !want[id] {
			t.Fatalf("vertex %d should not be live", id)
		}
	}
	// Near (low y) vertices must be finer on average than far ones.
	var nearSum, farSum float64
	var nearN, farN int
	for id := range res.Vertices {
		n := &ds.Tree.Nodes[id]
		if n.Pos.Y < 0.5 {
			nearSum += n.ELow
			nearN++
		} else {
			farSum += n.ELow
			farN++
		}
	}
	if nearN > 0 && farN > 0 && nearSum/float64(nearN) > farSum/float64(farN) {
		t.Fatal("near half coarser than far half")
	}
}

func TestMultiBaseMatchesSingleBaseMesh(t *testing.T) {
	ds, _ := buildDataset(t, 9, "highland")
	s := newTestStore(t, ds)
	model, err := costmodel.FromRTree(s.RTree(), s.DataSpace())
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.95, MaxY: 0.95},
		EMin: eAtPercentile(ds, 0.1), EMax: eAtPercentile(ds, 0.9), Axis: 1,
	}
	sb, err := s.SingleBase(qp)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := s.MultiBase(qp, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The live vertex sets must be identical (the interval rule is
	// fetch-pattern independent).
	a, b := sortedIDs(sb.Vertices), sortedIDs(mb.Vertices)
	if len(a) != len(b) {
		t.Fatalf("single-base %d vertices, multi-base %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("multi-base vertex set differs from single-base")
		}
	}
	// Multi-base fetches at most what single-base fetches.
	if mb.FetchedRecords > sb.FetchedRecords {
		t.Fatalf("multi-base fetched %d records, single-base %d", mb.FetchedRecords, sb.FetchedRecords)
	}
	// Edge coverage: multi-base may drop a few boundary witnesses, but
	// must recover nearly all single-base edges.
	sbEdges := make(map[[2]int64]bool, len(sb.Edges))
	for _, e := range sb.Edges {
		sbEdges[e] = true
	}
	covered := 0
	for _, e := range mb.Edges {
		if sbEdges[e] {
			covered++
		}
	}
	if len(sb.Edges) > 0 && float64(covered) < 0.95*float64(len(sb.Edges)) {
		t.Fatalf("multi-base covers %d of %d single-base edges", covered, len(sb.Edges))
	}
}

func TestMultiBaseCheaperOnSteepPlanes(t *testing.T) {
	ds, _ := buildDataset(t, 10, "highland")
	s := newTestStore(t, ds)
	model, err := costmodel.FromRTree(s.RTree(), s.DataSpace())
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.95, MaxY: 0.95},
		EMin: eAtPercentile(ds, 0.05), EMax: eAtPercentile(ds, 0.95), Axis: 1,
	}
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	sb, err := s.SingleBase(qp)
	if err != nil {
		t.Fatal(err)
	}
	sbDA := s.DiskAccesses()

	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	mb, err := s.MultiBase(qp, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	mbDA := s.DiskAccesses()

	if mb.Strips < 2 {
		t.Skipf("planner chose %d strips; plane not steep enough at this scale", mb.Strips)
	}
	if mbDA > sbDA {
		t.Fatalf("multi-base (%d strips) cost %d DA, single-base %d DA", mb.Strips, mbDA, sbDA)
	}
	if sb.FetchedRecords < mb.FetchedRecords {
		t.Fatalf("multi-base fetched more records (%d) than single-base (%d)", mb.FetchedRecords, sb.FetchedRecords)
	}
}

func TestStoreDiskAccessesGrowWithROI(t *testing.T) {
	ds, _ := buildDataset(t, 10, "crater")
	s := newTestStore(t, ds)
	e := eAtPercentile(ds, 0.3)
	var prev uint64
	for i, roi := range []geom.Rect{
		{MinX: 0.45, MinY: 0.45, MaxX: 0.55, MaxY: 0.55},
		{MinX: 0.3, MinY: 0.3, MaxX: 0.7, MaxY: 0.7},
		{MinX: 0.05, MinY: 0.05, MaxX: 0.95, MaxY: 0.95},
	} {
		if err := s.DropCaches(); err != nil {
			t.Fatal(err)
		}
		s.ResetStats()
		if _, err := s.ViewpointIndependent(roi, e); err != nil {
			t.Fatal(err)
		}
		da := s.DiskAccesses()
		if da == 0 {
			t.Fatal("cold query cost nothing")
		}
		if i > 0 && da < prev {
			t.Fatalf("larger ROI cost fewer disk accesses: %d < %d", da, prev)
		}
		prev = da
	}
}

func TestConnListStatsAreSmall(t *testing.T) {
	// Section 4: similar-LOD connection lists stay small (paper: avg 12)
	// while total connection points are an order of magnitude larger.
	ds, seq := buildDataset(t, 10, "highland")
	st := seq.Stats()
	if st.AvgSimilarLOD > 20 {
		t.Fatalf("average similar-LOD connections %g, expected ~12", st.AvgSimilarLOD)
	}
	if st.AvgTotal < 2*st.AvgSimilarLOD {
		t.Fatalf("total connections %g not much larger than similar-LOD %g", st.AvgTotal, st.AvgSimilarLOD)
	}
	_ = ds
}

func TestTrianglesFromAdjacency(t *testing.T) {
	adj := map[int64][]int64{
		1: {2, 3},
		2: {1, 3, 4},
		3: {1, 2, 4},
		4: {2, 3},
	}
	tris := trianglesFromAdjacency(adj)
	if len(tris) != 2 {
		t.Fatalf("got %d triangles: %v", len(tris), tris)
	}
	seen := map[geom.Triangle]bool{}
	for _, tr := range tris {
		seen[tr.Canon()] = true
	}
	if !seen[geom.Triangle{A: 1, B: 2, C: 3}] || !seen[geom.Triangle{A: 2, B: 3, C: 4}] {
		t.Fatalf("wrong triangles: %v", tris)
	}
}

func TestQueryAboveMaxLODReturnsRoot(t *testing.T) {
	ds, _ := buildDataset(t, 7, "highland")
	s := newTestStore(t, ds)
	res, err := s.ViewpointIndependent(fullRect(), s.MaxE()*100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) != len(ds.Tree.Roots) {
		t.Fatalf("query above max LOD returned %d vertices, want %d root(s)",
			len(res.Vertices), len(ds.Tree.Roots))
	}
	for _, root := range ds.Tree.Roots {
		if _, ok := res.Vertices[root]; !ok {
			t.Fatalf("root %d missing", root)
		}
	}
}

func BenchmarkViewpointIndependent(b *testing.B) {
	g, _ := heightfield.Named("highland", 65, 5)
	m := mesh.FromGrid(g)
	seq, err := simplify.Run(m, simplify.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := FromSequence(seq)
	if err != nil {
		b.Fatal(err)
	}
	s, err := BuildStore(ds, StorePools{})
	if err != nil {
		b.Fatal(err)
	}
	var es []float64
	for i := range ds.Tree.Nodes {
		if !ds.Tree.Nodes[i].IsLeaf() {
			es = append(es, ds.Tree.Nodes[i].ELow)
		}
	}
	sort.Float64s(es)
	e := es[len(es)/2]
	roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.DropCaches(); err != nil {
			b.Fatal(err)
		}
		s.ResetStats()
		if _, err := s.ViewpointIndependent(roi, e); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.DiskAccesses()), "DA/query")
}

func BenchmarkSingleBase(b *testing.B) {
	g, _ := heightfield.Named("highland", 65, 5)
	m := mesh.FromGrid(g)
	seq, err := simplify.Run(m, simplify.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := FromSequence(seq)
	if err != nil {
		b.Fatal(err)
	}
	s, err := BuildStore(ds, StorePools{})
	if err != nil {
		b.Fatal(err)
	}
	var es []float64
	for i := range ds.Tree.Nodes {
		if !ds.Tree.Nodes[i].IsLeaf() {
			es = append(es, ds.Tree.Nodes[i].ELow)
		}
	}
	sort.Float64s(es)
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9},
		EMin: es[len(es)/2], EMax: es[len(es)*95/100], Axis: 1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.DropCaches(); err != nil {
			b.Fatal(err)
		}
		s.ResetStats()
		if _, err := s.SingleBase(qp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.DiskAccesses()), "DA/query")
}
