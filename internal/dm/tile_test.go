package dm

import (
	"fmt"
	"math/rand"
	"testing"

	"dmesh/internal/geom"
)

// tileCover returns the 2^level x 2^level unit-square quadtree tiles
// intersecting r (boundary inclusive, indices clamped to the grid).
// Border tiles are widened to the store's data space: collapse placement
// may position merged nodes slightly outside the unit square, and those
// must land in some tile for the cover to stay exact.
func tileCover(s *Store, r geom.Rect, level int) []geom.Rect {
	n := 1 << level
	side := 1.0 / float64(n)
	clamp := func(f float64) int {
		if !(f >= 0) {
			return 0
		}
		if f > float64(n-1) {
			return n - 1
		}
		return int(f)
	}
	ds := s.DataSpace()
	ix0, ix1 := clamp(r.MinX*float64(n)), clamp(r.MaxX*float64(n))
	iy0, iy1 := clamp(r.MinY*float64(n)), clamp(r.MaxY*float64(n))
	var out []geom.Rect
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			t := geom.Rect{
				MinX: float64(ix) * side, MinY: float64(iy) * side,
				MaxX: float64(ix+1) * side, MaxY: float64(iy+1) * side,
			}
			if ix == 0 && ds.MinX < t.MinX {
				t.MinX = ds.MinX
			}
			if ix == n-1 && ds.MaxX > t.MaxX {
				t.MaxX = ds.MaxX
			}
			if iy == 0 && ds.MinY < t.MinY {
				t.MinY = ds.MinY
			}
			if iy == n-1 && ds.MaxY > t.MaxY {
				t.MaxY = ds.MaxY
			}
			out = append(out, t)
		}
	}
	return out
}

func stitchAgainstDirect(t *testing.T, s *Store, label string, r geom.Rect, e float64, level int) {
	t.Helper()
	var tiles []*TilePatch
	for _, tr := range tileCover(s, r, level) {
		tp, err := s.MaterializeTile(tr, e)
		if err != nil {
			t.Fatalf("%s: materialize %v: %v", label, tr, err)
		}
		tiles = append(tiles, tp)
	}
	got, err := StitchTiles(r, e, tiles)
	if err != nil {
		t.Fatalf("%s: stitch: %v", label, err)
	}
	want, err := s.ViewpointIndependent(r, e)
	if err != nil {
		t.Fatalf("%s: direct: %v", label, err)
	}
	requireSameMesh(t, label, got, want)
}

// TestMaterializeTileContent checks that a patch's live set is exactly
// the direct uniform query's vertex set over the same footprint.
func TestMaterializeTileContent(t *testing.T) {
	ds, _ := buildDataset(t, 8, "highland")
	s := newTestStore(t, ds)
	r := geom.Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.75, MaxY: 0.5}
	e := eAtPercentile(ds, 0.9)
	tp, err := s.MaterializeTile(r, e)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.ViewpointIndependent(r, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Nodes) != len(want.Vertices) {
		t.Fatalf("patch has %d nodes, direct query %d vertices", len(tp.Nodes), len(want.Vertices))
	}
	for id, p := range want.Vertices {
		n, ok := tp.Nodes[id]
		if !ok || n.Pos != p {
			t.Fatalf("node %d missing or misplaced in patch", id)
		}
	}
	if tp.FetchedRecords != want.FetchedRecords {
		t.Fatalf("patch fetched %d records, direct %d", tp.FetchedRecords, want.FetchedRecords)
	}
	// A single patch covering the whole ROI stitches to the direct result.
	res, err := StitchTiles(r, e, []*TilePatch{tp})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMesh(t, "single tile", res, want)
}

// TestStitchTilesExact is the subsystem's exactness property at the dm
// layer: over random ROIs, LODs, and tile-grid levels on both datasets,
// the tile-stitched mesh equals the direct query — including ROIs aligned
// on tile boundaries and degenerate zero-area ROIs.
func TestStitchTilesExact(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		ds, _ := buildDataset(t, 9, name)
		s := newTestStore(t, ds)
		rng := rand.New(rand.NewSource(42))
		pcts := []float64{0.5, 0.8, 0.9, 0.97, 0.995}
		for i := 0; i < 25; i++ {
			w := 0.1 + rng.Float64()*0.6
			h := 0.1 + rng.Float64()*0.6
			x := rng.Float64() * (1 - w)
			y := rng.Float64() * (1 - h)
			r := geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
			e := eAtPercentile(ds, pcts[i%len(pcts)])
			level := 1 + i%3
			stitchAgainstDirect(t, s, fmt.Sprintf("%s[%d]", name, i), r, e, level)
		}
		e := eAtPercentile(ds, 0.9)
		edgeCases := []geom.Rect{
			{MinX: 0.25, MinY: 0.25, MaxX: 0.75, MaxY: 0.75}, // aligned on level-2 boundaries
			{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},             // whole space, all tiles interior... and boundary
			{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5},     // zero-area on a tile corner
			{MinX: 0.3, MinY: 0.3, MaxX: 0.3, MaxY: 0.9},     // zero-width strip
			{MinX: -0.5, MinY: 0.2, MaxX: 1.5, MaxY: 0.4},    // extends past the data space
		}
		for j, r := range edgeCases {
			stitchAgainstDirect(t, s, fmt.Sprintf("%s edge[%d]", name, j), r, e, 2)
		}
	}
}

// TestStitchTilesAboveMaxLOD covers the clamp path: a query coarser than
// the whole dataset still stitches to the root approximation.
func TestStitchTilesAboveMaxLOD(t *testing.T) {
	ds, _ := buildDataset(t, 8, "highland")
	s := newTestStore(t, ds)
	stitchAgainstDirect(t, s, "above max", geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, s.MaxE()*2, 1)
}

func TestStitchTilesLODMismatch(t *testing.T) {
	ds, _ := buildDataset(t, 6, "highland")
	s := newTestStore(t, ds)
	e := eAtPercentile(ds, 0.9)
	tp, err := s.MaterializeTile(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StitchTiles(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, e*1.5, []*TilePatch{tp}); err == nil {
		t.Fatal("stitching tiles at the wrong LOD must fail")
	}
}
