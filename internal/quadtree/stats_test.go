package quadtree

import (
	"math"
	"testing"

	"dmesh/internal/storage/pager"
)

func TestStatsEmptyTree(t *testing.T) {
	tr, _, _ := build(t, nil)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st != (TreeStats{}) {
		t.Fatalf("empty tree stats = %+v, want zero", st)
	}
}

func TestStatsSingleLeaf(t *testing.T) {
	// Few enough records to stay in the root leaf: one page, depth 1.
	items := buildItems(10, 3, false)
	tr, _, _ := build(t, items)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.InnerNodes != 0 || st.LeafPages != 1 || st.MaxDepth != 1 {
		t.Fatalf("single-leaf stats = %+v", st)
	}
	if st.Records != len(items) {
		t.Fatalf("Records = %d, want %d", st.Records, len(items))
	}
	wantFill := float64(len(items)) / float64(tr.perLeaf())
	if math.Abs(st.AvgLeafFill-wantFill) > 1e-12 {
		t.Fatalf("AvgLeafFill = %g, want %g", st.AvgLeafFill, wantFill)
	}
}

func TestStatsSplitTree(t *testing.T) {
	items := buildItems(5000, 5, true)
	tr, _, _ := build(t, items)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != len(items) || int(tr.Len()) != len(items) {
		t.Fatalf("Records = %d (Len %d), want %d", st.Records, tr.Len(), len(items))
	}
	if st.InnerNodes == 0 {
		t.Fatal("5000 records in 4KiB pages must split into inner nodes")
	}
	if st.MaxDepth < 2 {
		t.Fatalf("MaxDepth = %d, want >= 2 after splitting", st.MaxDepth)
	}
	if st.LeafPages < st.Records/tr.perLeaf() {
		t.Fatalf("%d leaf pages cannot hold %d records (%d per leaf)",
			st.LeafPages, st.Records, tr.perLeaf())
	}
	if st.AvgLeafFill <= 0 || st.AvgLeafFill > 1 {
		t.Fatalf("AvgLeafFill = %g, want in (0, 1]", st.AvgLeafFill)
	}
}

func TestStatsDuplicatePointsOverflowChain(t *testing.T) {
	// Identical coordinates cannot be split spatially; the leaf must grow
	// an overflow chain, which Stats counts page by page.
	n := 600 // > perLeaf for 16-byte records in 4 KiB pages
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{X: 0.5, Y: 0.5, E: 0.25, Payload: payloadFor(i)}
	}
	tr, _, _ := build(t, items)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != n {
		t.Fatalf("Records = %d, want %d", st.Records, n)
	}
	if st.LeafPages < 2 {
		t.Fatalf("LeafPages = %d, want an overflow chain for %d duplicate records", st.LeafPages, n)
	}
}

func TestStatsDeterministic(t *testing.T) {
	items := buildItems(2000, 11, false)
	a, _, _ := build(t, items)
	b, _, _ := build(t, items)
	sa, err := a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("same input, different stats: %+v vs %+v", sa, sb)
	}
}

func TestStatsBadPageType(t *testing.T) {
	items := buildItems(50, 1, false)
	p := pager.New(pager.NewMemBackend(), 4096)
	tr, _, err := Build(p, 16, items)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the root page's type byte; Stats must surface the error
	// instead of misreading the page.
	fr, err := p.Get(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 0xFF
	fr.MarkDirty()
	fr.Unpin()
	if _, err := tr.Stats(); err == nil {
		t.Fatal("corrupted page type must fail Stats")
	}
}
