package quadtree

import (
	"encoding/binary"
	"fmt"

	"dmesh/internal/storage/pager"
)

// TreeStats summarizes the structure of a built tree.
type TreeStats struct {
	InnerNodes int
	LeafPages  int // includes chained overflow leaves
	MaxDepth   int
	// Records is the total record count across leaves (equals Len()).
	Records int
	// AvgLeafFill is the mean records per leaf page relative to capacity.
	AvgLeafFill float64
}

// Stats walks the tree and returns its structural statistics.
func (t *Tree) Stats() (TreeStats, error) {
	var st TreeStats
	if t.count == 0 {
		return st, nil
	}
	if err := t.stats(t.root, 1, &st); err != nil {
		return st, err
	}
	if st.LeafPages > 0 {
		st.AvgLeafFill = float64(st.Records) / float64(st.LeafPages*t.perLeaf())
	}
	return st, nil
}

func (t *Tree) stats(id pager.PageID, depth int, st *TreeStats) error {
	for id != 0 {
		fr, err := t.p.Get(id)
		if err != nil {
			return err
		}
		d := fr.Data()
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		switch d[0] {
		case leafType:
			st.LeafPages++
			st.Records += int(binary.LittleEndian.Uint16(d[1:]))
			next := pager.PageID(binary.LittleEndian.Uint32(d[3:]))
			fr.Unpin()
			id = next
		case innerType:
			st.InnerNodes++
			var children [8]pager.PageID
			for o := 0; o < 8; o++ {
				children[o] = pager.PageID(binary.LittleEndian.Uint32(d[innerHeader+24+o*4:]))
			}
			fr.Unpin()
			for _, c := range children {
				if c == 0 {
					continue
				}
				if err := t.stats(c, depth+1, st); err != nil {
					return err
				}
			}
			return nil
		default:
			typ := d[0]
			fr.Unpin()
			return fmt.Errorf("quadtree: page %d has bad type %d", id, typ)
		}
	}
	return nil
}
