// Package quadtree implements the LOD-quadtree of Xu (ADC 2003), the index
// the paper uses for its Progressive Mesh baseline: "a 3D quadtree, in
// which the LOD dimension is added. The LOD-quadtree is an adaptive
// quadtree that can handle the fact that point data are more uniformly
// distributed in the (x, y) space but severely skewed in the LOD
// dimension."
//
// Concretely this is a paged octree over (x, y, e) points built with
// median splits on every axis (the adaptivity that copes with LOD skew).
// Leaf pages store the point payloads themselves — a clustered index, like
// the LOD-R-tree and HDoV-tree store their data at tree nodes — so a range
// query's disk cost is the pages it traverses. Every stored record is also
// addressable by a stable reference for the by-ID ancestor chasing that PM
// query processing needs.
package quadtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"dmesh/internal/geom"
	"dmesh/internal/storage/pager"
)

const (
	magic    = 0x51544145 // "QTAE"
	metaPage = pager.PageID(0)

	leafType  = 1
	innerType = 2

	// Leaf layout: type(1) count(2) reserved(5), then records of
	// 24 bytes of coordinates + payload each.
	leafHeader  = 8
	coordsBytes = 24

	// Inner layout: type(1) reserved(7), 3 split coordinates, 8 child page
	// IDs (0 = empty octant).
	innerHeader = 8
)

// Ref is a stable reference to a stored record: leaf page and slot.
type Ref int64

func makeRef(page pager.PageID, slot int) Ref { return Ref(int64(page)<<16 | int64(slot)) }

func (r Ref) page() pager.PageID { return pager.PageID(r >> 16) }
func (r Ref) slot() int          { return int(r & 0xFFFF) }

// Item is one point record to store.
type Item struct {
	X, Y, E float64
	Payload []byte
}

// Tree is a read-only paged LOD-quadtree built once with Build.
type Tree struct {
	p       *pager.Pager
	root    pager.PageID
	recSize int // payload size
	count   int64
}

// Build constructs the tree over items on an empty pager. All payloads
// must have length recSize. The build is deterministic. The returned refs
// parallel items: refs[i] addresses items[i].
func Build(p *pager.Pager, recSize int, items []Item) (*Tree, []Ref, error) {
	if p.NumPages() != 0 {
		return nil, nil, errors.New("quadtree: Build requires an empty pager")
	}
	if recSize <= 0 || leafHeader+coordsBytes+recSize > pager.PageSize {
		return nil, nil, fmt.Errorf("quadtree: payload size %d out of range", recSize)
	}
	for i := range items {
		if len(items[i].Payload) != recSize {
			return nil, nil, fmt.Errorf("quadtree: item %d payload size %d, want %d", i, len(items[i].Payload), recSize)
		}
	}
	meta, err := p.Allocate()
	if err != nil {
		return nil, nil, err
	}
	defer meta.Unpin()

	t := &Tree{p: p, recSize: recSize, count: int64(len(items))}
	refs := make([]Ref, len(items))
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	root, err := t.build(items, idx, refs, 0)
	if err != nil {
		return nil, nil, err
	}
	t.root = root
	t.writeMeta(meta.Data())
	meta.MarkDirty()
	return t, refs, nil
}

// Open attaches to a previously built tree.
func Open(p *pager.Pager) (*Tree, error) {
	meta, err := p.Get(metaPage)
	if err != nil {
		return nil, fmt.Errorf("quadtree: open: %w", err)
	}
	defer meta.Unpin()
	d := meta.Data()
	if binary.LittleEndian.Uint32(d[0:]) != magic {
		return nil, errors.New("quadtree: bad magic")
	}
	return &Tree{
		p:       p,
		root:    pager.PageID(binary.LittleEndian.Uint32(d[4:])),
		recSize: int(binary.LittleEndian.Uint32(d[8:])),
		count:   int64(binary.LittleEndian.Uint64(d[12:])),
	}, nil
}

func (t *Tree) writeMeta(d []byte) {
	binary.LittleEndian.PutUint32(d[0:], magic)
	binary.LittleEndian.PutUint32(d[4:], uint32(t.root))
	binary.LittleEndian.PutUint32(d[8:], uint32(t.recSize))
	binary.LittleEndian.PutUint64(d[12:], uint64(t.count))
}

// Len returns the number of stored records.
func (t *Tree) Len() int64 { return t.count }

// perLeaf returns how many records fit in one leaf page.
func (t *Tree) perLeaf() int {
	return (pager.PageSize - leafHeader) / (coordsBytes + t.recSize)
}

// build recursively partitions idx (indices into items) and returns the
// page of the created subtree. depth guards against pathological inputs
// (many identical coordinates), falling back to chained leaves.
func (t *Tree) build(items []Item, idx []int, refs []Ref, depth int) (pager.PageID, error) {
	if len(idx) <= t.perLeaf() || depth > 40 || allSame(items, idx) {
		return t.writeLeafChain(items, idx, refs)
	}
	// Median splits on each axis: the adaptivity that handles LOD skew.
	xs := sortedCoords(items, idx, func(it *Item) float64 { return it.X })
	ys := sortedCoords(items, idx, func(it *Item) float64 { return it.Y })
	es := sortedCoords(items, idx, func(it *Item) float64 { return it.E })
	sx, sy, se := median(xs), median(ys), median(es)

	var octants [8][]int
	for _, i := range idx {
		o := 0
		if items[i].X >= sx {
			o |= 1
		}
		if items[i].Y >= sy {
			o |= 2
		}
		if items[i].E >= se {
			o |= 4
		}
		octants[o] = append(octants[o], i)
	}
	// A degenerate split (everything in one octant) cannot make progress.
	for o := 0; o < 8; o++ {
		if len(octants[o]) == len(idx) {
			return t.writeLeafChain(items, idx, refs)
		}
	}
	fr, err := t.p.Allocate()
	if err != nil {
		return 0, err
	}
	page := fr.ID()
	d := fr.Data()
	d[0] = innerType
	binary.LittleEndian.PutUint64(d[innerHeader:], math.Float64bits(sx))
	binary.LittleEndian.PutUint64(d[innerHeader+8:], math.Float64bits(sy))
	binary.LittleEndian.PutUint64(d[innerHeader+16:], math.Float64bits(se))
	fr.MarkDirty()
	fr.Unpin() // release during recursion; children update it via Get

	for o := 0; o < 8; o++ {
		if len(octants[o]) == 0 {
			continue
		}
		child, err := t.build(items, octants[o], refs, depth+1)
		if err != nil {
			return 0, err
		}
		fr, err := t.p.Get(page)
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint32(fr.Data()[innerHeader+24+o*4:], uint32(child))
		fr.MarkDirty()
		fr.Unpin()
	}
	return page, nil
}

func allSame(items []Item, idx []int) bool {
	first := items[idx[0]]
	for _, i := range idx[1:] {
		if items[i].X != first.X || items[i].Y != first.Y || items[i].E != first.E {
			return false
		}
	}
	return true
}

func sortedCoords(items []Item, idx []int, get func(*Item) float64) []float64 {
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = get(&items[i])
	}
	sort.Float64s(out)
	return out
}

func median(sorted []float64) float64 { return sorted[len(sorted)/2] }

// writeLeafChain stores idx's records across one or more chained leaf
// pages (slot 0xFFFF in the header area holds the next page).
func (t *Tree) writeLeafChain(items []Item, idx []int, refs []Ref) (pager.PageID, error) {
	per := t.perLeaf()
	var first, prev pager.PageID
	for start := 0; start < len(idx) || start == 0; start += per {
		end := start + per
		if end > len(idx) {
			end = len(idx)
		}
		fr, err := t.p.Allocate()
		if err != nil {
			return 0, err
		}
		page := fr.ID()
		d := fr.Data()
		d[0] = leafType
		binary.LittleEndian.PutUint16(d[1:], uint16(end-start))
		off := leafHeader
		for slot, k := 0, start; k < end; slot, k = slot+1, k+1 {
			it := items[idx[k]]
			binary.LittleEndian.PutUint64(d[off:], math.Float64bits(it.X))
			binary.LittleEndian.PutUint64(d[off+8:], math.Float64bits(it.Y))
			binary.LittleEndian.PutUint64(d[off+16:], math.Float64bits(it.E))
			copy(d[off+coordsBytes:], it.Payload)
			refs[idx[k]] = makeRef(page, slot)
			off += coordsBytes + t.recSize
		}
		fr.MarkDirty()
		fr.Unpin()
		if first == 0 {
			first = page
		} else {
			// Link from the previous page.
			pfr, err := t.p.Get(prev)
			if err != nil {
				return 0, err
			}
			binary.LittleEndian.PutUint32(pfr.Data()[3:], uint32(page))
			pfr.MarkDirty()
			pfr.Unpin()
		}
		prev = page
		if len(idx) == 0 {
			break
		}
	}
	return first, nil
}

// Query calls fn for every record whose point lies inside box (boundary
// inclusive), stopping early if fn returns false. Payload slices are only
// valid during the callback.
func (t *Tree) Query(box geom.Box, fn func(x, y, e float64, payload []byte) bool) error {
	if t.count == 0 {
		return nil
	}
	_, err := t.query(t.root, box, fn)
	return err
}

func (t *Tree) query(id pager.PageID, box geom.Box, fn func(x, y, e float64, payload []byte) bool) (bool, error) {
	for id != 0 {
		fr, err := t.p.Get(id)
		if err != nil {
			return false, err
		}
		d := fr.Data()
		switch d[0] {
		case leafType:
			cnt := int(binary.LittleEndian.Uint16(d[1:]))
			next := pager.PageID(binary.LittleEndian.Uint32(d[3:]))
			off := leafHeader
			for i := 0; i < cnt; i++ {
				x := math.Float64frombits(binary.LittleEndian.Uint64(d[off:]))
				y := math.Float64frombits(binary.LittleEndian.Uint64(d[off+8:]))
				e := math.Float64frombits(binary.LittleEndian.Uint64(d[off+16:]))
				if box.ContainsPoint(x, y, e) {
					if !fn(x, y, e, d[off+coordsBytes:off+coordsBytes+t.recSize]) {
						fr.Unpin()
						return false, nil
					}
				}
				off += coordsBytes + t.recSize
			}
			fr.Unpin()
			id = next // chained overflow leaf
		case innerType:
			sx := math.Float64frombits(binary.LittleEndian.Uint64(d[innerHeader:]))
			sy := math.Float64frombits(binary.LittleEndian.Uint64(d[innerHeader+8:]))
			se := math.Float64frombits(binary.LittleEndian.Uint64(d[innerHeader+16:]))
			var children [8]pager.PageID
			for o := 0; o < 8; o++ {
				children[o] = pager.PageID(binary.LittleEndian.Uint32(d[innerHeader+24+o*4:]))
			}
			fr.Unpin()
			for o := 0; o < 8; o++ {
				if children[o] == 0 {
					continue
				}
				if !octantIntersects(o, sx, sy, se, box) {
					continue
				}
				cont, err := t.query(children[o], box, fn)
				if err != nil || !cont {
					return cont, err
				}
			}
			return true, nil
		default:
			fr.Unpin()
			return false, fmt.Errorf("quadtree: page %d has bad type %d", id, d[0])
		}
	}
	return true, nil
}

// octantIntersects reports whether octant o (half-open on the low side of
// each split) can contain points inside box.
func octantIntersects(o int, sx, sy, se float64, box geom.Box) bool {
	if o&1 == 0 { // x < sx
		if box.MinX >= sx {
			return false
		}
	} else { // x >= sx
		if box.MaxX < sx {
			return false
		}
	}
	if o&2 == 0 {
		if box.MinY >= sy {
			return false
		}
	} else {
		if box.MaxY < sy {
			return false
		}
	}
	if o&4 == 0 {
		if box.MinE >= se {
			return false
		}
	} else {
		if box.MaxE < se {
			return false
		}
	}
	return true
}

// Fetch reads the record at ref, returning its coordinates and payload
// (copied). The cost is one page access, the same as any point fetch in
// the paper's setup.
func (t *Tree) Fetch(ref Ref) (x, y, e float64, payload []byte, err error) {
	fr, err := t.p.Get(ref.page())
	if err != nil {
		return 0, 0, 0, nil, err
	}
	defer fr.Unpin()
	d := fr.Data()
	if d[0] != leafType {
		return 0, 0, 0, nil, fmt.Errorf("quadtree: ref page %d is not a leaf", ref.page())
	}
	cnt := int(binary.LittleEndian.Uint16(d[1:]))
	if ref.slot() >= cnt {
		return 0, 0, 0, nil, fmt.Errorf("quadtree: ref slot %d out of range (%d)", ref.slot(), cnt)
	}
	off := leafHeader + ref.slot()*(coordsBytes+t.recSize)
	x = math.Float64frombits(binary.LittleEndian.Uint64(d[off:]))
	y = math.Float64frombits(binary.LittleEndian.Uint64(d[off+8:]))
	e = math.Float64frombits(binary.LittleEndian.Uint64(d[off+16:]))
	payload = append([]byte(nil), d[off+coordsBytes:off+coordsBytes+t.recSize]...)
	return x, y, e, payload, nil
}
