package quadtree

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/storage/pager"
)

func payloadFor(i int) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

func payloadID(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

func buildItems(n int, seed int64, skewE bool) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		e := rng.Float64()
		if skewE {
			// Severe LOD skew, as the paper describes: most points near 0.
			e = e * e * e * e
		}
		items[i] = Item{X: rng.Float64(), Y: rng.Float64(), E: e, Payload: payloadFor(i)}
	}
	return items
}

func build(t testing.TB, items []Item) (*Tree, []Ref, *pager.Pager) {
	t.Helper()
	p := pager.New(pager.NewMemBackend(), 4096)
	tr, refs, err := Build(p, 16, items)
	if err != nil {
		t.Fatal(err)
	}
	return tr, refs, p
}

func queryIDs(t testing.TB, tr *Tree, box geom.Box) []int64 {
	t.Helper()
	var out []int64
	if err := tr.Query(box, func(x, y, e float64, payload []byte) bool {
		out = append(out, payloadID(payload))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bruteIDs(items []Item, box geom.Box) []int64 {
	var out []int64
	for i, it := range items {
		if box.ContainsPoint(it.X, it.Y, it.E) {
			out = append(out, int64(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildValidation(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 64)
	if _, _, err := Build(p, 0, nil); err == nil {
		t.Error("zero payload size must fail")
	}
	if _, _, err := Build(p, 16, []Item{{Payload: make([]byte, 8)}}); err == nil {
		t.Error("wrong payload length must fail")
	}
}

func TestEmptyTree(t *testing.T) {
	tr, _, _ := build(t, nil)
	got := queryIDs(t, tr, geom.Box{MaxX: 1, MaxY: 1, MaxE: 1})
	if len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
}

func TestQueryMatchesBruteForceUniform(t *testing.T) {
	items := buildItems(5000, 1, false)
	tr, _, _ := build(t, items)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		b := geom.Box{
			MinX: rng.Float64() * 0.8, MinY: rng.Float64() * 0.8, MinE: rng.Float64() * 0.8,
		}
		b.MaxX = b.MinX + rng.Float64()*0.3
		b.MaxY = b.MinY + rng.Float64()*0.3
		b.MaxE = b.MinE + rng.Float64()*0.3
		if got, want := queryIDs(t, tr, b), bruteIDs(items, b); !sameIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", i, len(got), len(want))
		}
	}
}

func TestQueryMatchesBruteForceSkewed(t *testing.T) {
	// The paper's scenario: uniform in (x, y), severely skewed in e.
	items := buildItems(5000, 3, true)
	tr, _, _ := build(t, items)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		b := geom.Box{
			MinX: rng.Float64() * 0.5, MinY: rng.Float64() * 0.5, MinE: 0,
		}
		b.MaxX = b.MinX + 0.3
		b.MaxY = b.MinY + 0.3
		b.MaxE = rng.Float64() * 0.1 // thin slabs where the data is dense
		if got, want := queryIDs(t, tr, b), bruteIDs(items, b); !sameIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", i, len(got), len(want))
		}
	}
}

func TestBoundaryInclusive(t *testing.T) {
	items := []Item{
		{X: 0.5, Y: 0.5, E: 0.5, Payload: payloadFor(0)},
		{X: 0, Y: 0, E: 0, Payload: payloadFor(1)},
		{X: 1, Y: 1, E: 1, Payload: payloadFor(2)},
	}
	tr, _, _ := build(t, items)
	got := queryIDs(t, tr, geom.Box{MinX: 0.5, MinY: 0.5, MinE: 0.5, MaxX: 1, MaxY: 1, MaxE: 1})
	if !sameIDs(got, []int64{0, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	// Many records at the same point must not break the build (chained
	// leaves handle them).
	var items []Item
	for i := 0; i < 500; i++ {
		items = append(items, Item{X: 0.25, Y: 0.75, E: 0.1, Payload: payloadFor(i)})
	}
	tr, refs, _ := build(t, items)
	got := queryIDs(t, tr, geom.Box{MinX: 0.25, MinY: 0.75, MinE: 0.1, MaxX: 0.25, MaxY: 0.75, MaxE: 0.1})
	if len(got) != 500 {
		t.Fatalf("got %d of 500 duplicate records", len(got))
	}
	// All refs must still resolve.
	for i, r := range refs {
		_, _, _, payload, err := tr.Fetch(r)
		if err != nil {
			t.Fatal(err)
		}
		if payloadID(payload) != int64(i) {
			t.Fatalf("ref %d fetched wrong record", i)
		}
	}
}

func TestRefsResolve(t *testing.T) {
	items := buildItems(2000, 5, true)
	tr, refs, _ := build(t, items)
	for i, r := range refs {
		x, y, e, payload, err := tr.Fetch(r)
		if err != nil {
			t.Fatalf("Fetch(%d): %v", i, err)
		}
		if x != items[i].X || y != items[i].Y || e != items[i].E {
			t.Fatalf("ref %d coords (%g,%g,%g) != item (%g,%g,%g)", i, x, y, e, items[i].X, items[i].Y, items[i].E)
		}
		if payloadID(payload) != int64(i) {
			t.Fatalf("ref %d payload mismatch", i)
		}
	}
}

func TestFetchCostIsOnePage(t *testing.T) {
	items := buildItems(3000, 6, false)
	tr, refs, p := build(t, items)
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	if _, _, _, _, err := tr.Fetch(refs[1234]); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Reads != 1 {
		t.Fatalf("cold Fetch cost %d reads, want 1", s.Reads)
	}
}

func TestPersistence(t *testing.T) {
	items := buildItems(1500, 7, true)
	p := pager.New(pager.NewMemBackend(), 4096)
	tr, _, err := Build(p, 16, items)
	if err != nil {
		t.Fatal(err)
	}
	box := geom.Box{MinX: 0.1, MinY: 0.1, MinE: 0, MaxX: 0.6, MaxY: 0.6, MaxE: 0.5}
	want := queryIDs(t, tr, box)
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 1500 {
		t.Fatalf("reopened Len = %d", tr2.Len())
	}
	if got := queryIDs(t, tr2, box); !sameIDs(got, want) {
		t.Fatal("reopened tree returns different results")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 8)
	fr, _ := p.Allocate()
	fr.Unpin()
	if _, err := Open(p); err == nil {
		t.Fatal("Open must reject bad magic")
	}
}

func TestEarlyStop(t *testing.T) {
	items := buildItems(1000, 8, false)
	tr, _, _ := build(t, items)
	n := 0
	err := tr.Query(geom.Box{MaxX: 1, MaxY: 1, MaxE: 1}, func(x, y, e float64, payload []byte) bool {
		n++
		return n < 7
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestThinSlabCheaperThanFullCube(t *testing.T) {
	// The adaptive e splits must make thin-slab queries (what DM-style
	// plane queries look like) cheaper than full-volume scans.
	items := buildItems(20000, 9, true)
	tr, _, p := build(t, items)
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	queryIDs(t, tr, geom.Box{MinX: 0.4, MinY: 0.4, MinE: 0.0, MaxX: 0.6, MaxY: 0.6, MaxE: 0.001})
	slab := p.Stats().Reads

	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	queryIDs(t, tr, geom.Box{MaxX: 1, MaxY: 1, MaxE: 1})
	full := p.Stats().Reads
	if slab >= full {
		t.Fatalf("thin slab (%d) should cost less than full scan (%d)", slab, full)
	}
}

func BenchmarkQuery(b *testing.B) {
	items := buildItems(50000, 10, true)
	tr, _, _ := build(b, items)
	box := geom.Box{MinX: 0.3, MinY: 0.3, MinE: 0, MaxX: 0.6, MaxY: 0.6, MaxE: 0.3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Query(box, func(x, y, e float64, payload []byte) bool { n++; return true })
	}
}

func TestStats(t *testing.T) {
	items := buildItems(3000, 11, true)
	tr, _, _ := build(t, items)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 3000 {
		t.Fatalf("stats counted %d records, want 3000", st.Records)
	}
	if st.LeafPages == 0 || st.InnerNodes == 0 {
		t.Fatalf("degenerate structure: %+v", st)
	}
	if st.MaxDepth < 2 {
		t.Fatalf("depth %d too small for 3000 records", st.MaxDepth)
	}
	if st.AvgLeafFill <= 0 || st.AvgLeafFill > 1 {
		t.Fatalf("fill %g out of range", st.AvgLeafFill)
	}
	// Empty tree.
	p2 := pager.New(pager.NewMemBackend(), 16)
	empty, _, err := Build(p2, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := empty.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records != 0 || st2.LeafPages != 0 {
		t.Fatalf("empty stats: %+v", st2)
	}
}
